//! Topology assembly and scenario execution.
//!
//! Builds the paper's Figure-1 architecture: servers on Fast Ethernet, the
//! transparent proxy bridging toward the access point, clients (and the
//! implicit monitoring station — the engine sniffer) on the shared radio
//! medium; runs the workload; and collects per-client results through the
//! postmortem analyzer.

use powerburst_client::{ClientConfig, PowerClient};
use powerburst_coord::{Coordinator, CoordinatorConfig, COORD_IFACE};
use powerburst_core::invariants::{check_energy_conservation, InvariantKind, Violation};
use powerburst_core::{AdmissionStats, Proxy, ProxyConfig, ProxyStats, PROXY_AP, PROXY_LAN};
use powerburst_energy::{naive_energy_mj, CardSpec};
use powerburst_net::faults::{clock_skew_ramp, fault_stream, fault_streams, ApJitterFault};
use powerburst_net::{
    ports, AccessPoint, ChannelModel, Endpoint, HostAddr, IfaceId, NodeConfig, NodeId, Pipe,
    SockAddr, StaticRouter, Switch, World, AP_WIRED,
};
use powerburst_obs::{Counter, Recorder, RecorderConfig};
use powerburst_sim::rng::streams;
use powerburst_sim::{derive_rng, ClockModel, SimDuration, SimTime};
use powerburst_trace::{analyze_client, utilization, PolicyParams};
use powerburst_traffic::{
    generate_script, App, ByteServer, FtpClientApp, StreamSpec, VideoClientApp, VideoServer,
    WebClientApp,
};
use powerburst_transport::TcpConfig;

use crate::config::{ClientKind, RadioMode, ScenarioConfig};
use crate::results::{
    AppMetrics, ClientResult, FtpSummary, LiveSummary, ScenarioResult, WebSummary,
};

/// Well-known host numbering in assembled scenarios.
pub mod hosts {
    use powerburst_net::HostAddr;
    /// The streaming (Real) server.
    pub const VIDEO_SERVER: HostAddr = HostAddr(1);
    /// The web/ftp byte server.
    pub const BYTE_SERVER: HostAddr = HostAddr(2);
    /// The proxy itself (source of schedule broadcasts); in multi-cell
    /// worlds, the shard serving the first occupied cell.
    pub const PROXY: HostAddr = HostAddr(3);
    /// The coordinator tier (instantiated in multi-cell worlds only).
    pub const COORDINATOR: HostAddr = HostAddr(4);
    /// Client `i` lives at `CLIENT_BASE + i`.
    pub const CLIENT_BASE: u32 = 100;

    /// Host address of client `i`.
    pub fn client(i: usize) -> HostAddr {
        HostAddr(CLIENT_BASE + i as u32)
    }

    /// Host address of proxy shard `r` in a world of `n_clients` clients.
    /// Shard 0 keeps the legacy [`PROXY`] address; later shards sit just
    /// above the client range so the dense host table stays compact.
    pub fn proxy_shard(r: usize, n_clients: usize) -> HostAddr {
        if r == 0 {
            PROXY
        } else {
            HostAddr(CLIENT_BASE + n_clients as u32 + r as u32)
        }
    }
}

/// One proxy shard + access point serving one radio cell.
pub struct Shard {
    /// The shard proxy's node id.
    pub proxy: NodeId,
    /// The cell's access point node id.
    pub ap: NodeId,
    /// The shard proxy's host address.
    pub host: HostAddr,
    /// The *configured* cell index this shard serves (empty cells are
    /// elided, so this can exceed the shard's position in `shards`).
    pub cell: u32,
    /// Indices (into `ScenarioConfig::clients`) of this cell's clients.
    pub clients: Vec<usize>,
}

/// Handles to the assembled world, for harnesses that need mid-run access.
pub struct Assembled {
    /// The world, ready to run.
    pub world: World,
    /// The proxy's node id (shard 0 in multi-cell worlds).
    pub proxy: NodeId,
    /// The access point's node id (cell 0's AP in multi-cell worlds).
    pub ap: NodeId,
    /// Client node ids, in spec order.
    pub clients: Vec<NodeId>,
    /// The video server's node id.
    pub video_server: NodeId,
    /// The byte server's node id.
    pub byte_server: NodeId,
    /// All proxy shards, one per occupied cell (length 1 in the paper's
    /// single-AP world; `shards[0]` is always `proxy`/`ap`).
    pub shards: Vec<Shard>,
    /// The coordinator's node id, in multi-cell worlds.
    pub coordinator: Option<NodeId>,
    /// The run's observability recorder (disabled unless the scenario
    /// enables collection). Every instrumented layer holds a clone.
    pub obs: Recorder,
}

/// Build the world for a scenario without running it.
pub fn assemble(cfg: &ScenarioConfig) -> Assembled {
    let mut world = World::new(cfg.seed);
    let n = cfg.clients.len();

    // --- cell partition ------------------------------------------------------
    // Clients map onto cells (round-robin unless an explicit map is given);
    // only occupied cells get an AP + proxy shard, so `cells: 16` with all
    // clients in cell 0 assembles the identical 1-cell world.
    if let Some(map) = &cfg.cell_map {
        assert_eq!(map.len(), n, "cell_map must name a cell for every client");
        assert!(
            map.iter().all(|&c| (c as usize) < cfg.cells),
            "cell_map entry out of range (cells = {})",
            cfg.cells
        );
    }
    let mut cell_clients: Vec<Vec<usize>> = vec![Vec::new(); cfg.cells.max(1)];
    for i in 0..n {
        cell_clients[cfg.cell_of(i)].push(i);
    }
    let mut realized: Vec<usize> =
        (0..cell_clients.len()).filter(|&c| !cell_clients[c].is_empty()).collect();
    if realized.is_empty() {
        realized.push(0); // zero clients still gets the paper's single-AP world
    }
    let multi = realized.len() > 1;
    let mut rank_of_cell = vec![usize::MAX; cell_clients.len()];
    for (r, &c) in realized.iter().enumerate() {
        rank_of_cell[c] = r;
    }
    // Switch ifaces: 0 video, 1 byte, 2+r per shard, one more for the
    // coordinator. IfaceId is a u8, which caps the fan-out at 253 cells.
    assert!(
        2 + realized.len() + usize::from(multi) <= u8::MAX as usize + 1,
        "too many occupied cells for the switch's u8 iface space: {}",
        realized.len()
    );

    // One recorder per run: sweep jobs never share observability state, so
    // exports are deterministic regardless of how runs are parallelized.
    // Multi-cell worlds get one recording lane per world shard (backbone
    // lane 0 + one per cell) so shards never contend on the event channel
    // and exports stay deterministic at any thread count; the 1-cell world
    // keeps the single-lane recorder, byte-identical to before.
    let obs = if cfg.obs.metrics {
        Recorder::new(RecorderConfig {
            events: cfg.obs.events,
            event_cap: cfg.obs.event_cap,
            lanes: if multi { realized.len() + 1 } else { 1 },
        })
    } else {
        Recorder::disabled()
    };
    // Lane for components living on cell-rank `r`'s shard (see
    // `World::finalize`: cell r is world shard r + 1).
    let lane_of = |r: usize| if multi { obs.lane(r + 1) } else { obs.clone() };

    // --- traffic provisioning ------------------------------------------------
    // §4.1: requests are spaced "roughly one second apart in order to
    // spread traffic". The jitter matters: exact multiples of the frame
    // interval would re-synchronize every stream's frame emissions.
    let mut stagger_rng = derive_rng(cfg.seed, streams::TRAFFIC_BASE + 999);
    let mut streams_v = Vec::new();
    for (i, spec) in cfg.clients.iter().enumerate() {
        if let ClientKind::Video { fidelity } = spec.kind {
            use rand::Rng;
            let jitter = powerburst_sim::SimDuration::from_us(stagger_rng.random_range(0..250_000));
            streams_v.push(StreamSpec {
                client: SockAddr::new(hosts::client(i), ports::MEDIA),
                fidelity,
                start: SimTime::ZERO + cfg.stagger * (i as u64 + 1) + jitter,
                duration: cfg.duration,
                flow: i as u64,
            });
        }
    }
    let streams = streams_v;
    let mut traffic_rng = derive_rng(cfg.seed, streams::TRAFFIC_BASE);
    let video_server = world.add_node(
        Box::new(VideoServer::new(
            SockAddr::new(hosts::VIDEO_SERVER, ports::MEDIA),
            streams,
            cfg.adapt,
            &mut traffic_rng,
        )),
        NodeConfig::wired(hosts::VIDEO_SERVER),
    );
    let byte_server = world.add_node(
        Box::new(ByteServer::new(
            SockAddr::new(hosts::BYTE_SERVER, ports::HTTP),
            TcpConfig::default(),
        )),
        NodeConfig::wired(hosts::BYTE_SERVER),
    );

    // --- switch ---------------------------------------------------------------
    let mut router = StaticRouter::new();
    router.add_route(hosts::VIDEO_SERVER, IfaceId(0));
    router.add_route(hosts::BYTE_SERVER, IfaceId(1));
    router.set_default(IfaceId(2)); // shard 0 / unknown → proxy side
    if multi {
        // Each client's downstream traffic goes down its own cell's link;
        // later shard hosts and the coordinator get dedicated ifaces.
        // Shard 0 keeps riding the default route, exactly as before.
        for (r, &c) in realized.iter().enumerate() {
            let iface = IfaceId((2 + r) as u8);
            for &i in &cell_clients[c] {
                router.add_route(hosts::client(i), iface);
            }
            if r > 0 {
                router.add_route(hosts::proxy_shard(r, n), iface);
            }
        }
        router.add_route(hosts::COORDINATOR, IfaceId((2 + realized.len()) as u8));
    }
    let switch = world.add_node(Box::new(Switch::new(router)), NodeConfig::infrastructure());

    // --- server uplinks ---------------------------------------------------------
    world.add_link(
        Endpoint { node: video_server, iface: IfaceId(0) },
        Endpoint { node: switch, iface: IfaceId(0) },
        cfg.net.wired,
    );
    world.add_link(
        Endpoint { node: byte_server, iface: IfaceId(0) },
        Endpoint { node: switch, iface: IfaceId(1) },
        cfg.net.wired,
    );

    // --- proxy shards + access points, one pair per occupied cell --------------
    // Creation order preserves the legacy 1-cell node-id layout exactly:
    // proxy(3), ap(4), pipe(5, when configured), then clients.
    let coord_addr = SockAddr::new(hosts::COORDINATOR, ports::COORD);
    let mut shards = Vec::with_capacity(realized.len());
    for (r, &c) in realized.iter().enumerate() {
        let shard_clients = cell_clients[c].clone();
        let shard_host = hosts::proxy_shard(r, n);
        let shard_client_hosts: Vec<HostAddr> =
            shard_clients.iter().map(|&i| hosts::client(i)).collect();
        let mut pcfg = ProxyConfig::new(
            SockAddr::new(shard_host, ports::SCHEDULE),
            shard_client_hosts,
            cfg.policy,
        );
        pcfg.bw = cfg.bw;
        pcfg.mode = cfg.proxy_mode;
        pcfg.flag_unchanged = cfg.flag_unchanged;
        pcfg.admission = cfg.admission;
        pcfg.cell = r as u32;
        if multi {
            pcfg.coord = Some(coord_addr);
        }
        let mut proxy_node = Proxy::new(pcfg);
        if let Some(chan_cfg) = cfg.channel {
            // The model draws from its own derived stream (one per shard),
            // so attaching it never perturbs any other stochastic
            // component of the run.
            proxy_node.set_channel_model(ChannelModel::new(
                chan_cfg,
                shard_clients.len(),
                derive_rng(cfg.seed, streams::CHANNEL + r as u64),
            ));
        }
        proxy_node.set_recorder(lane_of(r));
        let proxy = world.add_node(
            Box::new(proxy_node),
            NodeConfig { host: Some(shard_host), clock: ClockModel::perfect(), wnic: None },
        );

        let mut ap_node = AccessPoint::new(cfg.net.ap_delay);
        if cfg.faults.affects_ap() {
            ap_node = ap_node.with_fault_jitter(ApJitterFault::new(
                cfg.faults.ap_jitter_prob,
                cfg.faults.ap_jitter_max,
                // Cell 0 keeps the legacy AP fault stream; further cells
                // fan out far above every other fault-stream index.
                derive_rng(cfg.seed, fault_stream(fault_streams::AP) + 256 * r as u64),
            ));
        }
        ap_node.set_recorder(lane_of(r));
        let ap = world.add_node(Box::new(ap_node), NodeConfig::infrastructure());

        // In multi-cell worlds the switch → shard hop is the metro
        // backhaul, and the whole cell-side chain (pipe, proxy, AP, the
        // radio cell) is pinned onto the cell's shard — the backhaul's
        // delay is then the only cross-shard latency and becomes the
        // engine's conservative lookahead. 1-cell worlds keep the paper's
        // all-Fast-Ethernet LAN on the single sequential shard.
        let uplink_spec = if multi { cfg.net.backhaul } else { cfg.net.wired };
        let uplink = Endpoint { node: switch, iface: IfaceId((2 + r) as u8) };
        let pipe = cfg
            .pipe
            .map(|pspec| world.add_node(Box::new(Pipe::new(pspec)), NodeConfig::infrastructure()));
        match pipe {
            Some(pipe) => {
                world.add_link(uplink, Endpoint { node: pipe, iface: IfaceId(0) }, uplink_spec);
                world.add_link(
                    Endpoint { node: pipe, iface: IfaceId(1) },
                    Endpoint { node: proxy, iface: PROXY_LAN },
                    cfg.net.wired,
                );
            }
            None => {
                world.add_link(uplink, Endpoint { node: proxy, iface: PROXY_LAN }, uplink_spec);
            }
        }
        world.add_link(
            Endpoint { node: proxy, iface: PROXY_AP },
            Endpoint { node: ap, iface: AP_WIRED },
            cfg.net.wired,
        );
        let cell_idx = world.add_cell(cfg.net.airtime, cfg.net.medium_backlog, ap);
        debug_assert_eq!(cell_idx, r);
        world.attach_wireless_cell(ap, powerburst_net::AP_RADIO, r);
        if multi {
            world.pin_to_cell(proxy, r);
            if let Some(pipe) = pipe {
                world.pin_to_cell(pipe, r);
            }
        }

        shards.push(Shard { proxy, ap, host: shard_host, cell: c as u32, clients: shard_clients });
    }
    world.set_faults(cfg.faults);

    // --- clients --------------------------------------------------------------------------
    let mut clock_rng = derive_rng(cfg.seed, streams::CLOCK);
    let mut skew_rng = derive_rng(cfg.seed, fault_stream(fault_streams::CLOCK));
    let mut client_ids = Vec::with_capacity(n);
    for (i, spec) in cfg.clients.iter().enumerate() {
        let host = hosts::client(i);
        let app: Box<dyn App> = match &spec.kind {
            ClientKind::Video { fidelity } => {
                let mut app = VideoClientApp::new(
                    SockAddr::new(host, ports::MEDIA),
                    SockAddr::new(hosts::VIDEO_SERVER, ports::MEDIA),
                    i as u64,
                );
                if cfg.buffer_reports {
                    // Playout drains at the nominal stream rate; the report
                    // format widens to 32 bytes only on this opt-in path.
                    app = app.with_buffer_reports(fidelity.effective_bps() as u64);
                }
                Box::new(app)
            }
            ClientKind::Web { script } => {
                let mut rng = derive_rng(cfg.seed, streams::TRAFFIC_BASE + 100 + i as u64);
                let pages = generate_script(script, &mut rng);
                Box::new(WebClientApp::new(
                    host,
                    SockAddr::new(hosts::BYTE_SERVER, ports::HTTP),
                    TcpConfig::default(),
                    pages,
                ))
            }
            ClientKind::Ftp { size } => Box::new(FtpClientApp::new(
                SockAddr::new(host, 9_000),
                SockAddr::new(hosts::BYTE_SERVER, ports::HTTP),
                TcpConfig::default(),
                *size,
            )),
        };
        let mut ccfg = ClientConfig::new(host);
        ccfg.early_transition = spec.early_transition;
        ccfg.skip_unchanged = spec.skip_unchanged;
        ccfg.comp = spec.comp;
        let mut clock =
            ClockModel::sample(&mut clock_rng, cfg.net.clock_offset_us, cfg.net.clock_drift_ppm);
        // Fault plan: pile an extra frequency error on top, so the
        // client↔proxy skew ramps linearly over the run.
        clock.drift_ppm += clock_skew_ramp(&cfg.faults, &mut skew_rng);
        let mut daemon = PowerClient::new(ccfg, app);
        daemon.set_recorder(lane_of(rank_of_cell[cfg.cell_of(i)]));
        let node = world.add_node(
            Box::new(daemon),
            NodeConfig {
                host: Some(host),
                clock,
                wnic: match cfg.radio {
                    RadioMode::Monitor => None,
                    RadioMode::Live => Some(CardSpec::WAVELAN_DSSS),
                },
            },
        );
        world.attach_wireless_cell(node, IfaceId(0), rank_of_cell[cfg.cell_of(i)]);
        client_ids.push(node);
    }

    // --- coordinator (multi-cell only) ----------------------------------------
    let coordinator = if multi {
        let coord = world.add_node(
            Box::new(Coordinator::new(CoordinatorConfig {
                addr: coord_addr,
                pool_permille: cfg.coord_pool_permille,
            })),
            NodeConfig::wired(hosts::COORDINATOR),
        );
        world.add_link(
            Endpoint { node: switch, iface: IfaceId((2 + shards.len()) as u8) },
            Endpoint { node: coord, iface: COORD_IFACE },
            cfg.net.wired,
        );
        Some(coord)
    } else {
        None
    };

    // Last: the world forwards the recorder to every live radio added
    // above (lane-aware — each radio records on its cell's lane).
    world.set_recorder(obs.clone());
    world.set_threads(cfg.threads);
    world.presize_from_topology();

    Assembled {
        world,
        proxy: shards[0].proxy,
        ap: shards[0].ap,
        clients: client_ids,
        video_server,
        byte_server,
        shards,
        coordinator,
        obs,
    }
}

/// Run a scenario to completion and collect results.
pub fn run_scenario(cfg: &ScenarioConfig) -> ScenarioResult {
    let mut a = assemble(cfg);
    a.world.run_until(SimTime::ZERO + cfg.duration);

    let trace = a.world.take_trace();
    let card = CardSpec::WAVELAN_DSSS;
    let end = SimTime::ZERO + cfg.duration;

    let mut clients = Vec::with_capacity(cfg.clients.len());
    let mut downshifts = 0u32;
    let mut dwell_violations: Vec<Violation> = Vec::new();
    for (i, spec) in cfg.clients.iter().enumerate() {
        let host = hosts::client(i);
        let node = a.clients[i];
        let policy = PolicyParams {
            early_transition: spec.early_transition,
            skip_unchanged: spec.skip_unchanged,
            ..PolicyParams::default()
        };
        let post = analyze_client(&trace, host, end, &policy);

        let live = match cfg.radio {
            RadioMode::Monitor => None,
            RadioMode::Live => {
                let stats = *a.world.stats(node);
                let rep = a.world.wnic_report(node).expect("live radio");
                let naive = naive_energy_mj(
                    &card,
                    cfg.duration,
                    stats.rx_airtime + stats.missed_airtime,
                    stats.tx_airtime,
                );
                Some(LiveSummary {
                    energy_mj: rep.total_mj,
                    naive_mj: naive,
                    saved: rep.saved_vs(naive),
                    missed_frames: stats.missed_frames,
                    rx_frames: stats.rx_frames,
                })
            }
        };

        // Energy conservation: the WNIC dwell times (live card in Live
        // runs, postmortem replay otherwise) must tile the run exactly.
        let dwell = match cfg.radio {
            RadioMode::Live => a.world.wnic_report(node).expect("live radio").duration(),
            RadioMode::Monitor => post.sleep + post.awake,
        };
        if let Some(v) =
            check_energy_conservation(host, dwell, cfg.duration, SimDuration::from_ms(2))
        {
            dwell_violations.push(v);
        }

        let (daemon, app) = {
            let pc = a.world.node_mut::<PowerClient>(node);
            let daemon = pc.stats;
            let app = match &spec.kind {
                ClientKind::Video { .. } => AppMetrics {
                    video: Some(pc.app_mut::<VideoClientApp>().stats()),
                    ..AppMetrics::default()
                },
                ClientKind::Web { .. } => {
                    let b = pc.app_mut::<WebClientApp>().stats();
                    let max = b.object_latencies_s.iter().copied().fold(0.0f64, f64::max);
                    AppMetrics {
                        web: Some(WebSummary {
                            objects_done: b.objects_done,
                            pages_done: b.pages_done,
                            bytes: b.bytes_received,
                            mean_latency_s: b.mean_latency_s(),
                            max_latency_s: max,
                        }),
                        ..AppMetrics::default()
                    }
                }
                ClientKind::Ftp { .. } => {
                    let f = pc.app_mut::<FtpClientApp>();
                    AppMetrics {
                        ftp: Some(FtpSummary {
                            done: f.done(),
                            transfer_s: f.transfer_time().map(|d| d.as_secs_f64()),
                            received: f.received,
                        }),
                        ..AppMetrics::default()
                    }
                }
            };
            (daemon, app)
        };

        clients.push(ClientResult {
            host,
            label: spec.kind.label(),
            is_video: spec.kind.is_video(),
            post,
            live,
            daemon,
            app,
        });
    }

    {
        let n_streams = cfg.clients.iter().filter(|c| c.kind.is_video()).count();
        let vs = a.world.node_mut::<VideoServer>(a.video_server);
        for s in 0..n_streams {
            downshifts += vs.downshifts(s);
        }
    }

    // Fold per-shard counters into one run-level picture. A 1-cell run has
    // exactly one shard, so this reduces to the legacy single-proxy reads.
    let mut proxy_stats = ProxyStats::default();
    let mut admission: Option<AdmissionStats> = None;
    let mut invariants = powerburst_core::invariants::InvariantLog::default();
    for s in &a.shards {
        let p = a.world.node_mut::<Proxy>(s.proxy);
        proxy_stats.merge(&p.stats);
        if let Some(shard_adm) = p.admission_stats() {
            let total = admission.get_or_insert(AdmissionStats::default());
            total.admitted += shard_adm.admitted;
            total.rejected += shard_adm.rejected;
            total.packets_refused += shard_adm.packets_refused;
        }
        let log = p.take_invariants();
        invariants.merge(log);
    }
    for v in dwell_violations {
        invariants.record(v);
    }
    let faults = {
        let mut f = a.world.fault_stats();
        let mut spikes = 0u64;
        let mut fifo = 0u64;
        for s in &a.shards {
            let ap = a.world.node_mut::<AccessPoint>(s.ap);
            spikes += ap.fault_spikes();
            fifo += ap.fifo_violations;
        }
        f.ap_spikes = spikes;
        // record_counted is a no-op at zero, so summing across APs and
        // recording once keeps the 1-cell invariant log byte-identical.
        invariants.record_counted(
            fifo,
            Violation {
                kind: InvariantKind::ApOrdering,
                t: SimTime::ZERO + cfg.duration,
                client: None,
                detail: format!("{fifo} out-of-order AP departures"),
            },
        );
        f
    };
    // Mirror the invariant total into the metric catalog so a metrics
    // export alone is enough for CI to fail on violations.
    a.obs.add(Counter::InvariantViolations, invariants.total());
    ScenarioResult {
        clients,
        proxy: proxy_stats,
        medium_drops: a.world.medium_drops(),
        utilization: utilization(&trace, cfg.duration),
        trace_frames: trace.len(),
        duration: cfg.duration,
        downshifts,
        admission,
        faults,
        invariants,
        sim_events: a.world.events_processed(),
        obs: a.obs.export(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClientKind, ClientSpec, ScenarioConfig};
    use powerburst_core::PolicyKind;
    use powerburst_sim::SimDuration;
    use powerburst_traffic::Fidelity;

    fn video_cfg(n: usize, secs: u64) -> ScenarioConfig {
        let clients = (0..n)
            .map(|_| ClientSpec::new(ClientKind::Video { fidelity: Fidelity::K56 }))
            .collect();
        ScenarioConfig::new(
            42,
            PolicyKind::DynamicFixed { interval: SimDuration::from_ms(100) },
            clients,
        )
        .with_duration(SimDuration::from_secs(secs))
    }

    #[test]
    fn single_video_client_end_to_end() {
        let r = run_scenario(&video_cfg(1, 20));
        let c = &r.clients[0];
        assert!(r.trace_frames > 100, "traffic flowed: {} frames", r.trace_frames);
        assert!(c.post.delivered > 50, "delivered {}", c.post.delivered);
        assert!(c.post.schedules_seen > 50, "schedules {}", c.post.schedules_seen);
        assert!(
            c.saved_pct() > 40.0,
            "low-rate stream must save energy, got {:.1}% (post: {:?})",
            c.saved_pct(),
            c.post
        );
        assert!(c.loss_pct() < 5.0, "loss {}", c.loss_pct());
        assert!(r.proxy.schedules_sent > 50);
        assert!(r.proxy.udp_packets_sent > 50);
    }

    proptest::proptest! {
        /// Any explicit cell map partitions the clients: every client's
        /// radio lands in exactly the cell its map entry names, shards
        /// cover the client index space exactly once, and each realized
        /// cell holds its AP plus precisely its own clients.
        #[test]
        fn arbitrary_cell_maps_partition_clients(
            map in proptest::collection::vec(0u32..6, 1..32),
        ) {
            let n = map.len();
            let clients = (0..n)
                .map(|_| ClientSpec::new(ClientKind::Video { fidelity: Fidelity::K56 }))
                .collect();
            let cfg = ScenarioConfig::new(
                11,
                PolicyKind::DynamicFixed { interval: SimDuration::from_ms(100) },
                clients,
            )
            .with_cells(6)
            .with_cell_map(map.clone());
            let a = assemble(&cfg);

            let mut seen = vec![0u32; n];
            for s in &a.shards {
                for &i in &s.clients {
                    proptest::prop_assert_eq!(map[i], s.cell, "client {} in wrong shard", i);
                    seen[i] += 1;
                }
            }
            proptest::prop_assert!(seen.iter().all(|&c| c == 1), "partition: {:?}", seen);
            for (r, s) in a.shards.iter().enumerate() {
                proptest::prop_assert_eq!(
                    a.world.cell_members(r).len(),
                    s.clients.len() + 1,
                    "cell {} must hold its AP + its clients only", r
                );
                for &i in &s.clients {
                    proptest::prop_assert_eq!(a.world.cell_of(a.clients[i]), Some(r as u32));
                }
            }
            let occupied: std::collections::BTreeSet<u32> = map.iter().copied().collect();
            proptest::prop_assert_eq!(a.shards.len(), occupied.len(), "one shard per occupied cell");
            proptest::prop_assert_eq!(a.coordinator.is_some(), occupied.len() > 1);
        }
    }

    #[test]
    fn three_mixed_clients_end_to_end() {
        let mut cfg = video_cfg(2, 20);
        cfg.clients.push(ClientSpec::new(ClientKind::Ftp { size: 300_000 }));
        let r = run_scenario(&cfg);
        assert_eq!(r.clients.len(), 3);
        let ftp = r.clients[2].app.ftp.expect("ftp metrics");
        assert!(ftp.done, "ftp finished: {ftp:?}");
        for c in &r.clients {
            assert!(c.saved_pct() > 20.0, "{}: {:.1}%", c.label, c.saved_pct());
        }
        assert!(r.proxy.splices_created >= 1);
        assert!(r.proxy.tcp_bytes_fed >= 300_000);
    }
}
