//! The coordinator tier of a multi-cell deployment.
//!
//! One proxy shard schedules each cell autonomously; the coordinator is
//! the only component that sees the whole city, and all it sees are
//! *aggregates*: one fixed-size [`DemandReport`] per shard per SRP
//! interval, answered with one fixed-size [`BudgetGrant`]. Coordination
//! cost is therefore O(cells) per interval — independent of how many
//! clients each cell holds — which is what lets schedule broadcasts stay
//! bounded per-cell while the client population scales (the
//! distributed-scheduling shape of Bi et al., arXiv:1703.05859).
//!
//! The protocol is fully asynchronous: a shard never waits for a grant.
//! It schedules with the last grant it has (initially the full interval)
//! and the coordinator's answer shapes the *next* interval. Losing a
//! report or a grant therefore degrades fairness for one interval, never
//! correctness.
//!
//! Budget arithmetic is integer-only and processes reports in arrival
//! order, so the coordinator adds no nondeterminism to a run.

use std::any::Any;

use powerburst_core::{BudgetGrant, DemandReport};
use powerburst_net::{ports, Ctx, IfaceId, Node, Packet, Proto, SockAddr};

/// The coordinator's single wired interface.
pub const COORD_IFACE: IfaceId = IfaceId(0);

/// Coordinator configuration.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorConfig {
    /// The coordinator's own address (`ports::COORD`).
    pub addr: SockAddr,
    /// Total airtime pool shared by all cells, in permille of one burst
    /// interval *per cell*. `None` (the default) grants every cell its
    /// full interval — cells are then isolated, which models
    /// non-overlapping channels. `Some(p)` models a shared constraint
    /// (e.g. co-channel interference or a backhaul cap): each cell's
    /// grant is its demand-proportional share of `p × cells`.
    pub pool_permille: Option<u32>,
}

impl CoordinatorConfig {
    /// A coordinator at `addr` with no shared-airtime constraint.
    pub fn new(addr: SockAddr) -> CoordinatorConfig {
        CoordinatorConfig { addr, pool_permille: None }
    }
}

/// Counters the experiment harnesses read after a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordStats {
    /// Well-formed demand reports received.
    pub reports_received: u64,
    /// Budget grants sent back.
    pub grants_sent: u64,
    /// Datagrams on the coordination port that failed to decode.
    pub malformed: u64,
}

/// Latest known state of one cell.
#[derive(Debug, Clone, Copy, Default)]
struct CellDemand {
    /// Last reported aggregate demand, bytes.
    demand_bytes: u64,
    /// Has this cell ever reported? (Unreported cells don't dilute the
    /// pool.)
    seen: bool,
}

/// The coordinator node.
pub struct Coordinator {
    cfg: CoordinatorConfig,
    /// Latest per-cell demand, indexed densely by cell id.
    cells: Vec<CellDemand>,
    /// Statistics.
    pub stats: CoordStats,
}

impl Coordinator {
    /// Build a coordinator from its configuration.
    pub fn new(cfg: CoordinatorConfig) -> Coordinator {
        Coordinator { cfg, cells: Vec::new(), stats: CoordStats::default() }
    }

    /// The grant (permille of the cell's burst interval) for `cell` under
    /// the current demand picture.
    ///
    /// With no pool every cell gets the full interval. With a pool, the
    /// cell gets its demand-proportional share of `pool × reporting
    /// cells`, clamped to `1..=1000` — the 1‰ floor guarantees a starved
    /// cell still broadcasts schedules and drains slowly instead of
    /// deadlocking.
    fn grant_for(&self, cell: usize) -> u32 {
        let Some(pool) = self.cfg.pool_permille else { return 1000 };
        let d = self.cells[cell].demand_bytes;
        if d == 0 {
            // An idle cell only needs the (tiny) schedule broadcast; give
            // it the floor and leave the pool to cells with traffic.
            return 1;
        }
        let total: u64 = self.cells.iter().filter(|c| c.seen).map(|c| c.demand_bytes).sum();
        let reporting = self.cells.iter().filter(|c| c.seen).count() as u64;
        // share = pool × reporting × d / total, in permille of one interval.
        let share = (pool as u64).saturating_mul(reporting).saturating_mul(d) / total.max(1);
        share.clamp(1, 1000) as u32
    }

    fn on_report(
        &mut self,
        ctx: &mut Ctx<'_>,
        iface: IfaceId,
        src: SockAddr,
        report: DemandReport,
    ) {
        let ci = report.cell as usize;
        if self.cells.len() <= ci {
            self.cells.resize(ci + 1, CellDemand::default());
        }
        self.cells[ci] = CellDemand { demand_bytes: report.demand_bytes, seen: true };
        self.stats.reports_received += 1;
        let grant =
            BudgetGrant { cell: report.cell, seq: report.seq, permille: self.grant_for(ci) };
        let pkt = Packet::udp(0, self.cfg.addr, src, grant.encode());
        // Reply on the interface the report arrived on, so the coordinator
        // works both behind a switch (one link) and wired point-to-point.
        ctx.send_assigning(iface, pkt);
        self.stats.grants_sent += 1;
    }
}

impl Node for Coordinator {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, pkt: Packet) {
        if pkt.proto != Proto::Udp || pkt.dst.port != ports::COORD {
            return; // not coordination traffic; the coordinator serves nothing else
        }
        match DemandReport::decode(&pkt.payload) {
            Some(report) => self.on_report(ctx, iface, pkt.src, report),
            None => self.stats.malformed += 1,
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerburst_net::{Endpoint, HostAddr, LinkSpec, NodeConfig, TimerToken, World};
    use powerburst_sim::{SimDuration, SimTime};

    /// Stub shard: sends one demand report at start, records grants.
    struct StubShard {
        me: SockAddr,
        coord: SockAddr,
        demand: u64,
        grants: Vec<BudgetGrant>,
    }

    impl Node for StubShard {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer_untracked(SimDuration::from_ms(1), 1 as TimerToken);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: TimerToken) {
            let report = DemandReport {
                cell: self.me.host.0 - 40, // cells 0, 1, ... for hosts 40, 41, ...
                seq: 5,
                clients: 8,
                demand_bytes: self.demand,
            };
            ctx.send_assigning(COORD_IFACE, Packet::udp(0, self.me, self.coord, report.encode()));
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _iface: IfaceId, pkt: Packet) {
            if let Some(g) = BudgetGrant::decode(&pkt.payload) {
                self.grants.push(g);
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Two shards wired to one coordinator; returns the shards' node ids.
    fn coord_world(
        pool: Option<u32>,
        demands: [u64; 2],
    ) -> (World, powerburst_net::NodeId, powerburst_net::NodeId) {
        let mut w = World::new(3);
        let coord_addr = SockAddr::new(HostAddr(4), ports::COORD);
        let coord = w.add_node(
            Box::new(Coordinator::new(CoordinatorConfig { addr: coord_addr, pool_permille: pool })),
            NodeConfig::wired(HostAddr(4)),
        );
        let mut shards = Vec::new();
        for (i, d) in demands.into_iter().enumerate() {
            let host = HostAddr(40 + i as u32);
            let id = w.add_node(
                Box::new(StubShard {
                    me: SockAddr::new(host, ports::COORD),
                    coord: coord_addr,
                    demand: d,
                    grants: Vec::new(),
                }),
                NodeConfig::wired(host),
            );
            // Coordinator iface i ↔ shard iface 0.
            w.add_link(
                Endpoint { node: coord, iface: IfaceId(i as u8) },
                Endpoint { node: id, iface: COORD_IFACE },
                LinkSpec::FAST_ETHERNET,
            );
            shards.push(id);
        }
        (w, shards[0], shards[1])
    }

    #[test]
    fn uncapped_pool_grants_full_interval() {
        let (mut w, s0, s1) = coord_world(None, [1_000_000, 10]);
        w.run_until(SimTime::from_ms(20));
        for (sid, cell) in [(s0, 0u32), (s1, 1u32)] {
            let s = w.node_mut::<StubShard>(sid);
            assert_eq!(s.grants.len(), 1, "exactly one grant per report");
            assert_eq!(s.grants[0], BudgetGrant { cell, seq: 5, permille: 1000 });
        }
    }

    #[test]
    fn capped_pool_splits_proportionally_to_demand() {
        // Pool of 500‰/cell across 2 cells = 1000‰ to split; cell 0 has
        // 3× cell 1's demand. Shard 1 reports after shard 0 (both fire at
        // 1 ms; delivery order follows node order), so its grant sees both
        // demands: 1000 × 250k/1M = 250‰.
        let (mut w, _s0, s1) = coord_world(Some(500), [750_000, 250_000]);
        w.run_until(SimTime::from_ms(20));
        let s = w.node_mut::<StubShard>(s1);
        assert_eq!(s.grants.len(), 1);
        assert_eq!(s.grants[0].permille, 250);
    }

    #[test]
    fn idle_cell_gets_floor_grant_under_a_pool() {
        let (mut w, _s0, s1) = coord_world(Some(500), [5_000, 0]);
        w.run_until(SimTime::from_ms(20));
        let s = w.node_mut::<StubShard>(s1);
        assert_eq!(s.grants.len(), 1);
        assert_eq!(s.grants[0].permille, 1, "idle cell gets the 1‰ floor, not a share");
    }

    #[test]
    fn malformed_coordination_datagrams_are_counted_not_answered() {
        let mut w = World::new(5);
        let coord_addr = SockAddr::new(HostAddr(4), ports::COORD);
        let coord = w.add_node(
            Box::new(Coordinator::new(CoordinatorConfig::new(coord_addr))),
            NodeConfig::wired(HostAddr(4)),
        );
        struct Garbage {
            coord: SockAddr,
        }
        impl Node for Garbage {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let src = SockAddr::new(HostAddr(9), ports::COORD);
                ctx.send_assigning(
                    COORD_IFACE,
                    Packet::udp(0, src, self.coord, bytes::Bytes::from_static(b"nonsense")),
                );
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _iface: IfaceId, _pkt: Packet) {
                panic!("garbage must not be answered");
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let g = w.add_node(Box::new(Garbage { coord: coord_addr }), NodeConfig::wired(HostAddr(9)));
        w.add_link(
            Endpoint { node: coord, iface: IfaceId(0) },
            Endpoint { node: g, iface: COORD_IFACE },
            LinkSpec::FAST_ETHERNET,
        );
        w.run_until(SimTime::from_ms(20));
        let c = w.node_mut::<Coordinator>(coord);
        assert_eq!(c.stats.malformed, 1);
        assert_eq!(c.stats.grants_sent, 0);
    }
}
