//! Postmortem energy/loss analysis — the paper's measurement methodology.
//!
//! §3.1: "We collect a trace of the wireless-side activity using a packet
//! sniffer running on a mobile computer known as the monitoring station.
//! This trace is read by a simulator postmortem in order to determine
//! energy used per client. This is compared to the total energy used by a
//! naive client, which keeps its WNIC in high-power mode for the duration
//! of the trace."
//!
//! [`analyze_client`] replays the captured trace against the client power
//! policy (schedule handling, rendezvous wake-ups with an early-transition
//! amount, sleep-on-mark, miss recovery) and integrates WNIC energy over
//! the resulting mode timeline. Frames that arrive while the replayed
//! client is asleep are the "packets lost" the paper reports (§4.3).

use powerburst_core::Schedule;
use powerburst_energy::{naive_energy_mj, CardSpec, Wnic};
use powerburst_net::{ports, Delivery, HostAddr, SnifferRecord};
use powerburst_sim::{EventQueue, SimDuration, SimTime};

/// Client power-policy parameters used in the replay.
#[derive(Debug, Clone, Copy)]
pub struct PolicyParams {
    /// Early-transition amount (Figure 6 sweeps 0–10 ms).
    pub early_transition: SimDuration,
    /// WNIC sleep→idle transition time.
    pub wake_transition: SimDuration,
    /// Patience past the predicted schedule arrival before declaring a miss.
    pub miss_slack: SimDuration,
    /// Gaps shorter than this are not worth sleeping.
    pub min_sleep: SimDuration,
    /// Honor the §5 `unchanged` flag: reuse the schedule for the following
    /// interval and skip its SRP wake-up entirely.
    pub skip_unchanged: bool,
    /// Card power model.
    pub card: CardSpec,
}

impl Default for PolicyParams {
    fn default() -> Self {
        PolicyParams {
            early_transition: SimDuration::from_ms(6),
            wake_transition: SimDuration::from_ms(2),
            miss_slack: SimDuration::from_ms(15),
            min_sleep: SimDuration::from_ms(5),
            skip_unchanged: false,
            card: CardSpec::WAVELAN_DSSS,
        }
    }
}

/// Result of replaying one client against the trace.
#[derive(Debug, Clone, Copy)]
pub struct PostmortemReport {
    /// Energy under the power policy, millijoules.
    pub energy_mj: f64,
    /// Energy of the naive (always high-power) client, millijoules.
    pub naive_mj: f64,
    /// Fraction of energy saved versus naive.
    pub saved: f64,
    /// Time asleep.
    pub sleep: SimDuration,
    /// Time awake (incl. wake transitions).
    pub awake: SimDuration,
    /// Sleep→idle transitions.
    pub transitions: u64,
    /// Unicast frames addressed to the client that it received.
    pub delivered: u64,
    /// Unicast frames addressed to the client that arrived while asleep.
    pub missed: u64,
    /// Frames dropped at the AP queue before ever reaching the air.
    pub ap_drops: u64,
    /// Schedule broadcasts received.
    pub schedules_seen: u64,
    /// Scheduled SRP wake-ups where no schedule arrived.
    pub schedules_missed: u64,
    /// SRP wake-ups skipped under the §5 unchanged optimization.
    pub skipped_srp_wakes: u64,
    /// Awake time spent waiting for predicted packets ("Early", Fig. 6).
    pub early_wait: SimDuration,
    /// Awake time caused by missed schedules ("MissedSched", Fig. 6).
    pub missed_sched_wait: SimDuration,
    /// Payload-ish bytes delivered (wire bytes of received data frames).
    pub bytes_delivered: u64,
}

impl PostmortemReport {
    /// Missed fraction of addressed frames.
    pub fn loss_fraction(&self) -> f64 {
        let total = self.delivered + self.missed;
        if total == 0 {
            return 0.0;
        }
        self.missed as f64 / total as f64
    }

    /// Energy (mJ) wasted on early waits, relative to sleeping instead.
    pub fn early_waste_mj(&self, card: &CardSpec) -> f64 {
        (card.idle_mw - card.sleep_mw) * self.early_wait.as_secs_f64()
    }

    /// Energy (mJ) wasted on missed schedules, relative to sleeping.
    pub fn missed_waste_mj(&self, card: &CardSpec) -> f64 {
        (card.idle_mw - card.sleep_mw) * self.missed_sched_wait.as_secs_f64()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WokeFor {
    Srp,
    Burst,
}

#[derive(Debug, Clone, Copy)]
enum PEv {
    WakeSlot { gen: u64, idx: usize },
    WakeSrp { gen: u64 },
    MissDeadline { gen: u64 },
    SlotEnd { gen: u64, extended: bool },
}

#[derive(Debug, Clone, Copy)]
struct MySlot {
    duration: SimDuration,
    sleep_at_end: bool,
}

struct Replay {
    p: PolicyParams,
    client: HostAddr,
    wnic: Wnic,
    heap: EventQueue<PEv>,
    gen: u64,
    slots: Vec<MySlot>,
    planned_wakes: Vec<SimTime>,
    pending: Option<(Schedule, SimTime)>,
    /// Predicted arrival of the next schedule we expect to hear, plus the
    /// interval used to extrapolate it. Tracks the lower envelope of
    /// schedule arrivals so one AP-delay spike on a schedule packet does
    /// not shift a whole interval of wake-up predictions late.
    srp_pred: Option<(SimTime, SimDuration)>,
    in_burst: bool,
    /// A burst's unmarked frames have been seen but its mark has not:
    /// lets a fixed slot's end linger for the tail instead of sleeping
    /// mid-burst. Cleared by the mark, a new schedule, or giving up after
    /// one bounded extension.
    burst_open: bool,
    /// Consecutive schedules heard with the `unchanged` flag set; drives
    /// the §5 skip escalation.
    unchanged_streak: u32,
    woke_for: Option<(WokeFor, SimTime)>,
    miss_since: Option<SimTime>,
    synced: bool,
    // accounting
    delivered: u64,
    missed: u64,
    ap_drops: u64,
    schedules_seen: u64,
    schedules_missed: u64,
    skipped_srp_wakes: u64,
    early_wait: SimDuration,
    missed_sched_wait: SimDuration,
    bytes_delivered: u64,
    naive_rx_airtime: SimDuration,
    tx_airtime: SimDuration,
}

impl Replay {
    fn new(client: HostAddr, p: PolicyParams) -> Replay {
        Replay {
            p,
            client,
            wnic: Wnic::new(p.card),
            heap: EventQueue::new(),
            gen: 0,
            slots: Vec::new(),
            planned_wakes: Vec::new(),
            pending: None,
            srp_pred: None,
            in_burst: false,
            burst_open: false,
            unchanged_streak: 0,
            woke_for: None,
            miss_since: None,
            synced: false,
            delivered: 0,
            missed: 0,
            ap_drops: 0,
            schedules_seen: 0,
            schedules_missed: 0,
            skipped_srp_wakes: 0,
            early_wait: SimDuration::ZERO,
            missed_sched_wait: SimDuration::ZERO,
            bytes_delivered: 0,
            naive_rx_airtime: SimDuration::ZERO,
            tx_airtime: SimDuration::ZERO,
        }
    }

    fn lead(&self) -> SimDuration {
        self.p.early_transition + self.p.wake_transition
    }

    fn sleep_if_idle(&mut self, t: SimTime) {
        if self.in_burst || self.miss_since.is_some() || !self.synced {
            return;
        }
        // Expecting a schedule any moment (the SRP wake already fired):
        // sleeping now would turn a late mark into a missed interval.
        if self.woke_for.map(|(w, _)| w) == Some(WokeFor::Srp) {
            return;
        }
        // Keep wakes at exactly `t` (imminent slot = stay awake).
        self.planned_wakes.retain(|&w| w >= t);
        match self.planned_wakes.iter().min() {
            Some(&w) if w.since(t) < self.p.min_sleep => {}
            _ => self.wnic.sleep(t),
        }
    }

    fn account_arrival(&mut self, t: SimTime) {
        if let Some((_, listen_start)) = self.woke_for.take() {
            self.early_wait += t.since(listen_start);
        }
    }

    fn apply_schedule(&mut self, sched: Schedule, arrival: SimTime, t: SimTime) {
        self.account_arrival(t);
        if let Some(since) = self.miss_since.take() {
            self.missed_sched_wait += t.since(since);
        }
        // AP forwarding delay is a slow random walk plus occasional large
        // exponential spikes. The walk is worth tracking — the burst's
        // frames ride the same walk — but a spike on the one schedule
        // packet every wake-up is extrapolated from shifts a whole
        // interval of slot predictions late (two intervals under §5
        // skipping), and the burst's first frames then land during the
        // wake transition. So: trust the raw arrival when it lands near
        // the arrival predicted from the previous schedule, substitute
        // the prediction when the arrival is a clear outlier, and
        // re-phase to the raw arrival on a gross disagreement (the proxy
        // moved its SRP).
        const SPIKE_GUARD: SimDuration = SimDuration::from_ms(2);
        const RESYNC: SimDuration = SimDuration::from_ms(20);
        let anchor = match self.srp_pred {
            Some((mut exp, per)) if per > SimDuration::ZERO => {
                // Stride over schedules we slept through or failed to hear.
                while arrival >= exp + per {
                    exp += per;
                }
                if arrival > exp
                    && arrival.since(exp) > RESYNC
                    && (exp + per).since(arrival) <= RESYNC
                {
                    exp += per;
                }
                let late = arrival > exp;
                if late && arrival.since(exp) > SPIKE_GUARD && arrival.since(exp) <= RESYNC {
                    exp
                } else {
                    arrival
                }
            }
            _ => arrival,
        };
        // A deferred schedule whose own interval has already elapsed is
        // useless: its rendezvous points are in the past and the following
        // schedule is imminent. Stay awake and wait for a fresh one.
        if t > arrival + sched.next_srp {
            self.gen += 1; // invalidate stale wake-ups
            self.slots.clear();
            self.planned_wakes.clear();
            self.miss_since = Some(t);
            self.srp_pred = Some((anchor + sched.next_srp, sched.next_srp));
            return;
        }
        self.synced = true;
        self.gen += 1;
        self.burst_open = false;
        let gen = self.gen;
        self.slots.clear();
        self.planned_wakes.clear();
        let lead = self.lead();
        let mine: Vec<_> = sched.slots_for(self.client).cloned().collect();
        for e in &mine {
            // A schedule applied late (deferred past its own burst) must
            // not arm wake-ups for slots that already started — the mark
            // that released it *was* that burst's end, which can land
            // before the slot's nominal end. Re-arming such a slot raises
            // a phantom burst expectation that keeps the client awake for
            // the whole following interval (and, because the next schedule
            // then also arrives "during a burst" and is deferred, locks
            // the replay into a never-sleeping cycle).
            // (Judged against the raw arrival, not the smoothed anchor:
            // the burst rides the same forwarding-delay walk the schedule
            // did, so the raw arrival is the better "has it started yet"
            // reference; the floor would declare slots elapsed early.)
            if arrival + e.rp_offset < t {
                // A *fixed* slot, though, ends on its own clock rather
                // than on a mark, so re-arming it cannot raise a phantom
                // expectation. If part of it still lies ahead the burst
                // may simply be running late behind AP delay: stay up for
                // the remainder instead of sleeping through frames that
                // are still in flight.
                let end = arrival + e.rp_offset + e.duration;
                let fixed = e.client.is_broadcast() || sched.fixed_slots;
                if fixed && t < end {
                    let idx = self.slots.len();
                    self.slots.push(MySlot { duration: end.since(t), sleep_at_end: true });
                    self.heap.push(t, PEv::WakeSlot { gen, idx });
                    self.planned_wakes.push(t);
                }
                continue;
            }
            let idx = self.slots.len();
            self.slots.push(MySlot {
                duration: e.duration,
                sleep_at_end: e.client.is_broadcast() || sched.fixed_slots,
            });
            let wake_at = (anchor + e.rp_offset.saturating_sub(lead)).max(t);
            self.heap.push(wake_at, PEv::WakeSlot { gen, idx });
            self.planned_wakes.push(wake_at);
        }
        // §5 optimization: an unchanged schedule is reused for the
        // following interval(s) and their SRP wakes are skipped entirely.
        // Permanent slots allow more than one skip: each consecutive
        // unchanged schedule doubles the reuse span, capped so a schedule
        // change is never heard more than `MAX_REUSE` intervals late.
        // The extrapolation stays exact because the proxy's SRP phase is
        // fixed — only per-packet AP jitter varies, which the early-
        // transition amount absorbs.
        const MAX_REUSE: u32 = 8;
        if sched.unchanged {
            self.unchanged_streak = self.unchanged_streak.saturating_add(1);
        } else {
            self.unchanged_streak = 0;
        }
        let reuse = if sched.unchanged && self.p.skip_unchanged && !mine.is_empty() {
            (1u32 << self.unchanged_streak.min(3)).min(MAX_REUSE)
        } else {
            1
        };
        self.skipped_srp_wakes += u64::from(reuse - 1);
        for j in 1..reuse {
            for e in &mine {
                let idx = self.slots.len();
                self.slots.push(MySlot {
                    duration: e.duration,
                    sleep_at_end: e.client.is_broadcast() || sched.fixed_slots,
                });
                let wake_at =
                    (anchor + sched.next_srp * u64::from(j) + e.rp_offset.saturating_sub(lead))
                        .max(t);
                self.heap.push(wake_at, PEv::WakeSlot { gen, idx });
                self.planned_wakes.push(wake_at);
            }
        }
        let srp_nominal = anchor + sched.next_srp * u64::from(reuse);
        let srp_at = if reuse > 1 {
            (srp_nominal - lead).max(t)
        } else {
            (anchor + sched.next_srp.saturating_sub(lead)).max(t)
        };
        self.heap.push(srp_at, PEv::WakeSrp { gen });
        self.planned_wakes.push(srp_at);
        self.srp_pred = Some((srp_nominal, sched.next_srp));
        self.sleep_if_idle(t);
    }

    fn on_policy_event(&mut self, t: SimTime, ev: PEv) {
        match ev {
            PEv::WakeSlot { gen, idx } => {
                if gen != self.gen {
                    return;
                }
                self.wnic.wake(t);
                let Some(slot) = self.slots.get(idx).copied() else { return };
                self.woke_for = Some((WokeFor::Burst, t + self.p.wake_transition));
                if slot.sleep_at_end {
                    // Fixed slots end on their own clock: linger briefly
                    // for late frames, then sleep without needing a mark.
                    self.heap.push(
                        t + self.lead() + slot.duration + SimDuration::from_ms(2),
                        PEv::SlotEnd { gen, extended: false },
                    );
                } else {
                    self.in_burst = true;
                }
            }
            PEv::WakeSrp { gen } => {
                if gen != self.gen {
                    return;
                }
                self.wnic.wake(t);
                self.woke_for = Some((WokeFor::Srp, t + self.p.wake_transition));
                self.heap.push(t + self.lead() + self.p.miss_slack, PEv::MissDeadline { gen });
            }
            PEv::MissDeadline { gen } => {
                if gen != self.gen {
                    return;
                }
                if self.woke_for.map(|(w, _)| w) == Some(WokeFor::Srp) {
                    self.schedules_missed += 1;
                    self.woke_for = None;
                    self.miss_since = Some(t);
                }
            }
            PEv::SlotEnd { gen, extended } => {
                if gen != self.gen {
                    return;
                }
                // Only the burst expectation ends with the slot; an SRP
                // expectation (the SRP wake may already have fired) must
                // survive or the client would sleep through the schedule.
                if self.burst_open {
                    // The burst's frames arrived but its mark hasn't: the
                    // tail is straggling behind AP forwarding delay.
                    // Linger up to `miss_slack` — the same patience
                    // granted a late schedule — before giving it up.
                    // Bounded to one extension so a lost mark costs at
                    // most `miss_slack` of extra awake time. (An *empty*
                    // slot gets no such grace: first frames can't outrun
                    // the normal close, so waiting longer buys nothing.)
                    if !extended && self.pending.is_none() {
                        self.heap.push(t + self.p.miss_slack, PEv::SlotEnd { gen, extended: true });
                        return;
                    }
                    self.burst_open = false;
                }
                if self.woke_for.map(|(w, _)| w) == Some(WokeFor::Burst) {
                    self.woke_for = None;
                }
                if let Some((sched, arrival)) = self.pending.take() {
                    self.in_burst = false;
                    self.apply_schedule(sched, arrival, t);
                } else {
                    self.sleep_if_idle(t);
                }
            }
        }
    }

    fn on_record(&mut self, rec: &SnifferRecord) {
        let t = rec.t;
        if rec.delivery == Delivery::QueueDrop {
            if rec.dst.host == self.client {
                self.ap_drops += 1;
            }
            return;
        }
        if rec.src.host == self.client {
            // The client's own uplink (ACKs, receiver reports): billed as
            // transmit energy for both the policy and the naive client.
            self.wnic.on_transmit(t, rec.airtime);
            self.tx_airtime += rec.airtime;
            return;
        }
        if rec.delivery == Delivery::Broadcast {
            // Naive client hears broadcasts too.
            self.naive_rx_airtime += rec.airtime;
            let is_sched = rec.dst.port == ports::SCHEDULE;
            if self.wnic.is_listening(t) {
                self.wnic.on_receive(t, rec.airtime);
                if is_sched {
                    if let Some(payload) = &rec.payload {
                        if let Some(sched) = Schedule::decode(payload) {
                            self.schedules_seen += 1;
                            if self.in_burst && self.pending.is_none() {
                                // Rule (1): defer until the marked packet —
                                // but the schedule did arrive, so the SRP
                                // wait is over and no miss may be declared.
                                if self.woke_for.map(|(w, _)| w) == Some(WokeFor::Srp) {
                                    self.account_arrival(t);
                                }
                                self.pending = Some((sched, t));
                            } else {
                                self.in_burst = false;
                                self.pending = None;
                                self.apply_schedule(sched, t, t);
                            }
                        }
                    }
                }
            }
            return;
        }
        if rec.dst.host == self.client {
            self.naive_rx_airtime += rec.airtime;
            if self.wnic.is_listening(t) {
                self.delivered += 1;
                self.bytes_delivered += rec.wire_size as u64;
                self.wnic.on_receive(t, rec.airtime);
                if self.woke_for.map(|(w, _)| w) == Some(WokeFor::Burst) {
                    self.account_arrival(t);
                }
                if rec.tos_mark {
                    self.in_burst = false;
                    self.burst_open = false;
                    if let Some((sched, arrival)) = self.pending.take() {
                        self.apply_schedule(sched, arrival, t);
                    } else {
                        self.sleep_if_idle(t);
                    }
                } else {
                    // An unmarked frame means a burst is mid-flight; let a
                    // fixed slot's end linger for the mark instead of
                    // cutting a straggling tail frame off.
                    self.burst_open = true;
                }
            } else {
                self.missed += 1;
            }
        }
    }
}

/// Replay `records` (time-ordered) for `client`, ending the billing window
/// at `run_end`.
pub fn analyze_client(
    records: &[SnifferRecord],
    client: HostAddr,
    run_end: SimTime,
    p: &PolicyParams,
) -> PostmortemReport {
    let mut r = Replay::new(client, *p);
    for rec in records {
        // Fire policy timers due before this frame.
        while let Some(evt) = r.heap.peek_time() {
            if evt > rec.t {
                break;
            }
            let (t, ev) = r.heap.pop().expect("peeked");
            r.on_policy_event(t, ev);
        }
        r.on_record(rec);
    }
    // Drain remaining policy events up to the end of the window.
    while let Some(evt) = r.heap.peek_time() {
        if evt > run_end {
            break;
        }
        let (t, ev) = r.heap.pop().expect("peeked");
        r.on_policy_event(t, ev);
    }
    if let Some(since) = r.miss_since.take() {
        r.missed_sched_wait += run_end.since(since);
    }
    let energy = r.wnic.report_at(run_end);
    let naive =
        naive_energy_mj(&p.card, run_end.since(SimTime::ZERO), r.naive_rx_airtime, r.tx_airtime);
    PostmortemReport {
        energy_mj: energy.total_mj,
        naive_mj: naive,
        saved: if naive > 0.0 { 1.0 - energy.total_mj / naive } else { 0.0 },
        sleep: energy.sleep,
        awake: energy.awake + energy.waking,
        transitions: energy.wake_transitions,
        delivered: r.delivered,
        missed: r.missed,
        ap_drops: r.ap_drops,
        schedules_seen: r.schedules_seen,
        schedules_missed: r.schedules_missed,
        skipped_srp_wakes: r.skipped_srp_wakes,
        early_wait: r.early_wait,
        missed_sched_wait: r.missed_sched_wait,
        bytes_delivered: r.bytes_delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use powerburst_core::{Schedule, ScheduleEntry};
    use powerburst_net::{Packet, SockAddr};

    const CLIENT: HostAddr = HostAddr(10);
    const PROXY: HostAddr = HostAddr(1);

    fn sched_record(t: SimTime, sched: &Schedule) -> SnifferRecord {
        let pkt = Packet::udp(
            0,
            SockAddr::new(PROXY, ports::SCHEDULE),
            SockAddr::new(HostAddr::BROADCAST, ports::SCHEDULE),
            sched.encode(),
        );
        SnifferRecord::of(t, &pkt, SimDuration::from_us(1_000), Delivery::Broadcast)
    }

    fn data_record(t: SimTime, mark: bool) -> SnifferRecord {
        let mut pkt = Packet::udp(
            0,
            SockAddr::new(PROXY, 554),
            SockAddr::new(CLIENT, 554),
            Bytes::from(vec![0u8; 500]),
        );
        pkt.tos_mark = mark;
        SnifferRecord::of(t, &pkt, SimDuration::from_us(1_300), Delivery::Delivered)
    }

    fn simple_schedule(rp_ms: u64, dur_ms: u64, interval_ms: u64) -> Schedule {
        Schedule {
            seq: 0,
            entries: vec![ScheduleEntry {
                client: CLIENT,
                rp_offset: SimDuration::from_ms(rp_ms),
                duration: SimDuration::from_ms(dur_ms),
            }],
            next_srp: SimDuration::from_ms(interval_ms),
            unchanged: false,
            fixed_slots: false,
            saturated: false,
        }
    }

    /// Build a well-behaved periodic trace: schedule every 100ms, a small
    /// burst (2 packets, second marked) a few ms after each schedule.
    fn periodic_trace(intervals: u64) -> Vec<SnifferRecord> {
        let mut recs = Vec::new();
        let mut sched = simple_schedule(10, 10, 100);
        for k in 0..intervals {
            sched.seq = k;
            let t0 = SimTime::from_ms(5 + 100 * k);
            recs.push(sched_record(t0, &sched));
            recs.push(data_record(t0 + SimDuration::from_ms(10), false));
            recs.push(data_record(t0 + SimDuration::from_ms(12), true));
        }
        recs
    }

    #[test]
    fn well_behaved_trace_saves_energy_and_loses_nothing() {
        let recs = periodic_trace(50);
        let end = SimTime::from_ms(5 + 100 * 50);
        let rep = analyze_client(&recs, CLIENT, end, &PolicyParams::default());
        assert_eq!(rep.missed, 0, "no losses on a punctual trace");
        assert_eq!(rep.delivered, 100);
        assert_eq!(rep.schedules_seen, 50);
        assert_eq!(rep.schedules_missed, 0);
        assert!(rep.saved > 0.5, "saved {}", rep.saved);
        assert!(rep.sleep > rep.awake, "mostly asleep");
        assert!(rep.transitions >= 50, "wakes for schedule + burst");
    }

    #[test]
    fn naive_exceeds_policy_energy() {
        let recs = periodic_trace(20);
        let end = SimTime::from_ms(5 + 100 * 20);
        let rep = analyze_client(&recs, CLIENT, end, &PolicyParams::default());
        assert!(rep.naive_mj > rep.energy_mj);
    }

    #[test]
    fn late_schedule_causes_miss_and_waste() {
        let mut recs = Vec::new();
        let mut sched = simple_schedule(10, 10, 100);
        // Two punctual intervals (with data bursts), then the third
        // schedule arrives 60ms late.
        for k in 0..2u64 {
            sched.seq = k;
            let t0 = SimTime::from_ms(5 + 100 * k);
            recs.push(sched_record(t0, &sched));
            recs.push(data_record(t0 + SimDuration::from_ms(10), false));
            recs.push(data_record(t0 + SimDuration::from_ms(12), true));
        }
        sched.seq = 2;
        recs.push(sched_record(SimTime::from_ms(5 + 200 + 60), &sched));
        // End the window before the post-recovery SRP would fire, so the
        // end-of-trace tail doesn't register as a second miss.
        let rep = analyze_client(&recs, CLIENT, SimTime::from_ms(300), &PolicyParams::default());
        assert_eq!(rep.schedules_missed, 1);
        assert!(rep.missed_sched_wait >= SimDuration::from_ms(30));
    }

    #[test]
    fn data_while_asleep_is_missed() {
        let mut recs = periodic_trace(3);
        // Inject a stray packet mid-sleep (t=80ms into interval 0: the
        // client slept after its 17ms mark and wakes ~97ms).
        recs.push(data_record(SimTime::from_ms(60), false));
        recs.sort_by_key(|r| r.t);
        let rep = analyze_client(&recs, CLIENT, SimTime::from_ms(305), &PolicyParams::default());
        assert_eq!(rep.missed, 1);
        assert!(rep.loss_fraction() > 0.0);
    }

    #[test]
    fn zero_early_transition_wastes_less_when_punctual() {
        let recs = periodic_trace(50);
        let end = SimTime::from_ms(5 + 100 * 50);
        let p0 = PolicyParams { early_transition: SimDuration::ZERO, ..PolicyParams::default() };
        let p8 =
            PolicyParams { early_transition: SimDuration::from_ms(8), ..PolicyParams::default() };
        let r0 = analyze_client(&recs, CLIENT, end, &p0);
        let r8 = analyze_client(&recs, CLIENT, end, &p8);
        // On a perfectly punctual trace, waking earlier only wastes energy.
        assert!(r0.early_wait < r8.early_wait);
        assert!(r0.energy_mj < r8.energy_mj);
    }

    #[test]
    fn empty_trace_is_all_naive() {
        let rep = analyze_client(&[], CLIENT, SimTime::from_secs(10), &PolicyParams::default());
        // Never synced: stays awake the whole run, saving nothing.
        assert_eq!(rep.sleep, SimDuration::ZERO);
        assert!(rep.saved.abs() < 1e-9);
    }
}
