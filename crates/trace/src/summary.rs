//! Trace summaries and export.
//!
//! Utilities the experiment harnesses use on top of the raw capture:
//! per-client traffic accounting, medium utilization, and a JSON-lines
//! export of capture rows for offline inspection (the stand-in for keeping
//! the paper's raw `tcpdump` files).

use powerburst_net::{Delivery, HostAddr, Proto, SnifferRecord};
use powerburst_sim::{SimDuration, SimTime};

/// Per-client traffic totals extracted from a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClientTraffic {
    /// Downlink frames addressed to the client that made it to the air.
    pub frames: u64,
    /// Downlink wire bytes.
    pub bytes: u64,
    /// Downlink airtime.
    pub airtime: SimDuration,
    /// Marked (end-of-burst) frames.
    pub marks: u64,
    /// Frames the live client slept through (live-mode runs only).
    pub missed_live: u64,
    /// Frames dropped at the AP queue.
    pub ap_drops: u64,
    /// Uplink frames sent by the client.
    pub uplink_frames: u64,
}

/// Compute traffic totals for one client.
pub fn client_traffic(records: &[SnifferRecord], client: HostAddr) -> ClientTraffic {
    let mut t = ClientTraffic::default();
    for r in records {
        if r.src.host == client {
            t.uplink_frames += 1;
            continue;
        }
        if r.dst.host != client {
            continue;
        }
        match r.delivery {
            Delivery::QueueDrop => t.ap_drops += 1,
            Delivery::MissedAsleep => {
                t.missed_live += 1;
                t.frames += 1;
                t.bytes += r.wire_size as u64;
                t.airtime += r.airtime;
            }
            Delivery::Delivered => {
                t.frames += 1;
                t.bytes += r.wire_size as u64;
                t.airtime += r.airtime;
                if r.tos_mark {
                    t.marks += 1;
                }
            }
            _ => {}
        }
    }
    t
}

/// Whole-trace medium statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MediumSummary {
    /// Frames on the air.
    pub frames: u64,
    /// Total airtime.
    pub airtime: SimDuration,
    /// Schedule broadcasts.
    pub broadcasts: u64,
    /// Frames dropped at the transmit queue.
    pub queue_drops: u64,
    /// Capture span (first..last timestamp).
    pub span: SimDuration,
}

/// Summarize medium activity.
pub fn medium_summary(records: &[SnifferRecord]) -> MediumSummary {
    let mut s = MediumSummary::default();
    let mut first: Option<SimTime> = None;
    let mut last = SimTime::ZERO;
    for r in records {
        match r.delivery {
            Delivery::QueueDrop => {
                s.queue_drops += 1;
                continue;
            }
            Delivery::Broadcast => s.broadcasts += 1,
            _ => {}
        }
        s.frames += 1;
        s.airtime += r.airtime;
        first.get_or_insert(r.t);
        last = last.max(r.t);
    }
    if let Some(f) = first {
        s.span = last.since(f);
    }
    s
}

/// Medium utilization over `window` (fraction of time carrying frames).
pub fn utilization(records: &[SnifferRecord], window: SimDuration) -> f64 {
    if window.is_zero() {
        return 0.0;
    }
    medium_summary(records).airtime.as_secs_f64() / window.as_secs_f64()
}

/// One serializable capture row (tcpdump-line equivalent).
#[derive(Debug)]
pub struct TraceRow {
    /// Capture timestamp, seconds.
    pub t_s: f64,
    /// Packet id.
    pub id: u64,
    /// Source `host:port`.
    pub src: String,
    /// Destination `host:port`.
    pub dst: String,
    /// `"udp"` or `"tcp"`.
    pub proto: &'static str,
    /// Wire bytes.
    pub bytes: usize,
    /// Airtime, microseconds.
    pub airtime_us: u64,
    /// End-of-burst mark.
    pub mark: bool,
    /// Delivery outcome.
    pub delivery: &'static str,
}

impl TraceRow {
    /// Convert a sniffer record.
    pub fn from_record(r: &SnifferRecord) -> TraceRow {
        TraceRow {
            t_s: r.t.as_secs_f64(),
            id: r.pkt_id,
            src: r.src.to_string(),
            dst: r.dst.to_string(),
            proto: match r.proto {
                Proto::Udp => "udp",
                Proto::Tcp => "tcp",
            },
            bytes: r.wire_size,
            airtime_us: r.airtime.as_us(),
            mark: r.tos_mark,
            delivery: match r.delivery {
                Delivery::Delivered => "delivered",
                Delivery::MissedAsleep => "missed",
                Delivery::Broadcast => "broadcast",
                Delivery::QueueDrop => "qdrop",
                Delivery::NoSuchHost => "nohost",
                Delivery::Corrupted => "corrupt",
            },
        }
    }
}

impl TraceRow {
    /// Render as one JSON object (all fields are numbers, booleans, or
    /// strings that never need escaping, so this is hand-rolled rather
    /// than pulling in a JSON dependency).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"t_s\":{:.6},\"id\":{},\"src\":\"{}\",\"dst\":\"{}\",",
                "\"proto\":\"{}\",\"bytes\":{},\"airtime_us\":{},",
                "\"mark\":{},\"delivery\":\"{}\"}}"
            ),
            self.t_s,
            self.id,
            self.src,
            self.dst,
            self.proto,
            self.bytes,
            self.airtime_us,
            self.mark,
            self.delivery
        )
    }
}

/// Render the trace as JSON-lines (one row per frame).
pub fn to_jsonl(records: &[SnifferRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96);
    for r in records {
        out.push_str(&TraceRow::from_record(r).to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use powerburst_net::{Packet, SockAddr};

    fn rec(src: u32, dst: u32, mark: bool, delivery: Delivery, t_ms: u64) -> SnifferRecord {
        let mut pkt = Packet::udp(
            1,
            SockAddr::new(HostAddr(src), 1),
            SockAddr::new(HostAddr(dst), 2),
            Bytes::from(vec![0u8; 100]),
        );
        pkt.tos_mark = mark;
        SnifferRecord::of(SimTime::from_ms(t_ms), &pkt, SimDuration::from_us(900), delivery)
    }

    #[test]
    fn client_traffic_separates_directions() {
        let recs = vec![
            rec(1, 10, false, Delivery::Delivered, 1),
            rec(1, 10, true, Delivery::Delivered, 2),
            rec(10, 1, false, Delivery::Delivered, 3),
            rec(1, 11, false, Delivery::Delivered, 4),
            rec(1, 10, false, Delivery::MissedAsleep, 5),
            rec(1, 10, false, Delivery::QueueDrop, 6),
        ];
        let t = client_traffic(&recs, HostAddr(10));
        assert_eq!(t.frames, 3);
        assert_eq!(t.marks, 1);
        assert_eq!(t.missed_live, 1);
        assert_eq!(t.ap_drops, 1);
        assert_eq!(t.uplink_frames, 1);
    }

    #[test]
    fn medium_summary_counts() {
        let recs = vec![
            rec(1, 10, false, Delivery::Delivered, 0),
            rec(1, 11, false, Delivery::Broadcast, 50),
            rec(1, 10, false, Delivery::QueueDrop, 60),
        ];
        let s = medium_summary(&recs);
        assert_eq!(s.frames, 2);
        assert_eq!(s.broadcasts, 1);
        assert_eq!(s.queue_drops, 1);
        assert_eq!(s.span, SimDuration::from_ms(50));
    }

    #[test]
    fn utilization_fraction() {
        let recs = vec![rec(1, 10, false, Delivery::Delivered, 0)];
        let u = utilization(&recs, SimDuration::from_ms(9));
        assert!((u - 0.1).abs() < 1e-9, "u {u}");
    }

    #[test]
    fn jsonl_has_one_line_per_record() {
        let recs = vec![
            rec(1, 10, false, Delivery::Delivered, 0),
            rec(1, 10, true, Delivery::MissedAsleep, 1),
        ];
        let s = to_jsonl(&recs);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("\"delivery\":\"missed\""));
        assert!(s.contains("\"mark\":true"));
    }
}
