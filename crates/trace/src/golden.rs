//! Golden-trace regression harness.
//!
//! A scenario run under a fixed master seed is bit-reproducible: every
//! random stream derives from the seed, and the event queue breaks time
//! ties deterministically. That makes the *rendered summary of a run* a
//! regression artifact — snapshot it once, and any code change that
//! perturbs scheduling, energy accounting, or loss behaviour shows up as
//! a textual diff against the checked-in golden file.
//!
//! The renderer here is deliberately canonical: fixed field order, fixed
//! float precision, integer microseconds for durations. Tests compose
//! these lines into a snapshot and call [`check_golden`], which compares
//! against a file on disk and — when the drift is intentional — rewrites
//! it under `PB_UPDATE_GOLDEN=1`.

use std::fmt::Write as _;
use std::path::Path;

use crate::postmortem::PostmortemReport;

/// Environment variable that switches [`check_golden`] from compare to
/// regenerate.
pub const UPDATE_ENV: &str = "PB_UPDATE_GOLDEN";

/// Render one client's postmortem report as canonical golden lines.
///
/// Floats are printed with six decimals (stable well past any physical
/// meaning); durations as integer microseconds. The `label` keys the
/// block inside a multi-client snapshot.
pub fn render_postmortem(label: &str, r: &PostmortemReport) -> String {
    let mut s = String::with_capacity(512);
    let _ = writeln!(s, "[{label}]");
    let _ = writeln!(s, "energy_mj = {:.6}", r.energy_mj);
    let _ = writeln!(s, "naive_mj = {:.6}", r.naive_mj);
    let _ = writeln!(s, "saved = {:.6}", r.saved);
    let _ = writeln!(s, "sleep_us = {}", r.sleep.as_us());
    let _ = writeln!(s, "awake_us = {}", r.awake.as_us());
    let _ = writeln!(s, "transitions = {}", r.transitions);
    let _ = writeln!(s, "delivered = {}", r.delivered);
    let _ = writeln!(s, "missed = {}", r.missed);
    let _ = writeln!(s, "ap_drops = {}", r.ap_drops);
    let _ = writeln!(s, "schedules_seen = {}", r.schedules_seen);
    let _ = writeln!(s, "schedules_missed = {}", r.schedules_missed);
    let _ = writeln!(s, "skipped_srp_wakes = {}", r.skipped_srp_wakes);
    let _ = writeln!(s, "early_wait_us = {}", r.early_wait.as_us());
    let _ = writeln!(s, "missed_sched_wait_us = {}", r.missed_sched_wait.as_us());
    let _ = writeln!(s, "bytes_delivered = {}", r.bytes_delivered);
    s
}

/// First line where two renderings differ, with both sides.
fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!("line {}: expected `{e}`, got `{a}`", i + 1);
        }
    }
    let (el, al) = (expected.lines().count(), actual.lines().count());
    format!("line counts differ: expected {el}, got {al}")
}

/// Compare `actual` against the golden file at `path`.
///
/// * On match: `Ok(())`.
/// * On drift: `Err` naming the first differing line and how to refresh.
/// * With `PB_UPDATE_GOLDEN=1` in the environment: the file is rewritten
///   (creating parent directories) and the check passes.
/// * Missing file without the env var: `Err` telling the caller to
///   generate it.
pub fn check_golden(path: &Path, actual: &str) -> Result<(), String> {
    let update = std::env::var(UPDATE_ENV).is_ok_and(|v| !v.is_empty() && v != "0");
    if update {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        std::fs::write(path, actual)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        return Ok(());
    }
    let expected = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "golden file {} unreadable ({e}); run with {UPDATE_ENV}=1 to generate it",
            path.display()
        )
    })?;
    if expected == actual {
        return Ok(());
    }
    Err(format!(
        "golden drift against {}: {}\nif intentional, refresh with {UPDATE_ENV}=1",
        path.display(),
        first_diff(&expected, actual),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerburst_sim::SimDuration;

    fn report() -> PostmortemReport {
        PostmortemReport {
            energy_mj: 1234.5678901,
            naive_mj: 5678.0,
            saved: 0.782_654_3,
            sleep: SimDuration::from_ms(90_000),
            awake: SimDuration::from_ms(29_000),
            transitions: 42,
            delivered: 1_000,
            missed: 3,
            ap_drops: 1,
            schedules_seen: 199,
            schedules_missed: 1,
            skipped_srp_wakes: 0,
            early_wait: SimDuration::from_ms(1_200),
            missed_sched_wait: SimDuration::from_ms(15),
            bytes_delivered: 1_234_567,
        }
    }

    #[test]
    fn rendering_is_deterministic_and_complete() {
        let a = render_postmortem("client-0", &report());
        let b = render_postmortem("client-0", &report());
        assert_eq!(a, b);
        // One line per report field plus the header.
        assert_eq!(a.lines().count(), 16);
        assert!(a.starts_with("[client-0]\n"));
        assert!(a.contains("saved = 0.782654\n"));
        assert!(a.contains("sleep_us = 90000000\n"));
    }

    #[test]
    fn check_golden_matches_and_reports_drift() {
        let dir = std::env::temp_dir().join(format!("pb-golden-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        let text = render_postmortem("c", &report());
        std::fs::write(&path, &text).unwrap();
        assert!(check_golden(&path, &text).is_ok());

        let mut drifted = report();
        drifted.delivered += 1;
        let err = check_golden(&path, &render_postmortem("c", &drifted)).unwrap_err();
        assert!(err.contains("delivered"), "drift names the field: {err}");
        assert!(err.contains(UPDATE_ENV), "hint mentions the refresh knob");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_golden_file_explains_itself() {
        let err = check_golden(Path::new("/nonexistent/pb/golden.txt"), "x").unwrap_err();
        assert!(err.contains(UPDATE_ENV));
    }
}
