//! # powerburst-trace
//!
//! The measurement half of the paper's methodology (§3.1, §4.1): traces
//! captured by the monitoring station are replayed *postmortem* to compute
//! per-client WNIC energy, missed packets, and the waste decomposition of
//! Figure 6, against the baseline of a naive always-on client.
//!
//! * [`postmortem`] — the replay simulator ([`analyze_client`]);
//! * [`summary`] — per-client traffic accounting, medium utilization, and
//!   JSON-lines export of captures;
//! * [`golden`] — the golden-trace regression harness: canonical summary
//!   rendering plus snapshot compare/refresh.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod golden;
pub mod postmortem;
pub mod summary;

pub use golden::{check_golden, render_postmortem};
pub use postmortem::{analyze_client, PolicyParams, PostmortemReport};
pub use summary::{
    client_traffic, medium_summary, to_jsonl, utilization, ClientTraffic, MediumSummary, TraceRow,
};
