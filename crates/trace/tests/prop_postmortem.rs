//! Property tests for the postmortem analyzer: for arbitrary well-formed
//! schedule/burst traces, the replay's accounting must balance and its
//! energy must stay inside physical bounds.

use bytes::Bytes;
use proptest::prelude::*;

use powerburst_core::{Schedule, ScheduleEntry};
use powerburst_energy::CardSpec;
use powerburst_net::{ports, Delivery, HostAddr, Packet, SnifferRecord, SockAddr};
use powerburst_sim::{SimDuration, SimTime};
use powerburst_trace::{analyze_client, PolicyParams};

const CLIENT: HostAddr = HostAddr(100);
const PROXY: HostAddr = HostAddr(3);

fn sched_record(t_us: u64, seq: u64, rp_ms: u64, dur_ms: u64, interval_ms: u64) -> SnifferRecord {
    let sched = Schedule {
        seq,
        entries: vec![ScheduleEntry {
            client: CLIENT,
            rp_offset: SimDuration::from_ms(rp_ms),
            duration: SimDuration::from_ms(dur_ms),
        }],
        next_srp: SimDuration::from_ms(interval_ms),
        unchanged: false,
        fixed_slots: false,
        saturated: false,
    };
    let pkt = Packet::udp(
        0,
        SockAddr::new(PROXY, ports::SCHEDULE),
        SockAddr::new(HostAddr::BROADCAST, ports::SCHEDULE),
        sched.encode(),
    );
    SnifferRecord::of(
        SimTime::from_us(t_us),
        &pkt,
        SimDuration::from_us(1_000),
        Delivery::Broadcast,
    )
}

fn data_record(t_us: u64, mark: bool) -> SnifferRecord {
    let mut pkt = Packet::udp(
        0,
        SockAddr::new(HostAddr(1), 554),
        SockAddr::new(CLIENT, 554),
        Bytes::from(vec![0u8; 400]),
    );
    pkt.tos_mark = mark;
    SnifferRecord::of(
        SimTime::from_us(t_us),
        &pkt,
        SimDuration::from_us(1_200),
        Delivery::Delivered,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever schedule jitter, burst placement, and mark pattern the
    /// trace throws at the replay:
    /// * delivered + missed equals the frames addressed to the client,
    /// * sleep + awake equals the run duration,
    /// * energy sits between the all-sleep and all-receive bounds,
    /// * savings never exceed the card's physical ceiling.
    #[test]
    fn accounting_balances_for_arbitrary_traces(
        intervals in 5u64..60,
        interval_ms in 50u64..300,
        rp_ms in 1u64..20,
        jitters in prop::collection::vec(0i64..8_000, 5..60),
        burst_sizes in prop::collection::vec(0usize..6, 5..60),
        drop_marks in prop::collection::vec(any::<bool>(), 5..60),
        early_ms in 0u64..10,
    ) {
        let mut recs: Vec<SnifferRecord> = Vec::new();
        let mut addressed = 0u64;
        for k in 0..intervals {
            let base = 2_000 + k * interval_ms * 1_000;
            let jitter = jitters[k as usize % jitters.len()].unsigned_abs();
            let t_sched = base + jitter;
            recs.push(sched_record(t_sched, k, rp_ms, 15, interval_ms));
            let n = burst_sizes[k as usize % burst_sizes.len()];
            for i in 0..n {
                let is_last = i + 1 == n;
                let keep_mark = !drop_marks[k as usize % drop_marks.len()];
                let t = t_sched + rp_ms * 1_000 + i as u64 * 1_500;
                recs.push(data_record(t, is_last && keep_mark));
                addressed += 1;
            }
        }
        recs.sort_by_key(|r| r.t);
        let end = SimTime::from_us(2_000 + intervals * interval_ms * 1_000 + 50_000);
        let p = PolicyParams {
            early_transition: SimDuration::from_ms(early_ms),
            ..PolicyParams::default()
        };
        let rep = analyze_client(&recs, CLIENT, end, &p);

        prop_assert_eq!(rep.delivered + rep.missed, addressed);
        let total = rep.sleep + rep.awake;
        prop_assert_eq!(total, end.since(SimTime::ZERO));

        let card = CardSpec::WAVELAN_DSSS;
        let dur_s = end.as_secs_f64();
        prop_assert!(rep.energy_mj >= card.sleep_mw * dur_s - 1e-6);
        prop_assert!(rep.energy_mj <= card.recv_mw * dur_s + 1e-6);
        prop_assert!(rep.saved <= card.max_savings_fraction() + 1e-9);
        prop_assert!(rep.energy_mj <= rep.naive_mj + 1e-6, "policy can't exceed naive");
        prop_assert!(rep.schedules_seen <= intervals);
    }

    /// A punctual, fully-marked trace is lossless for any early amount,
    /// and a larger early amount never decreases energy.
    #[test]
    fn punctual_traces_are_lossless_and_early_is_monotone(
        intervals in 10u64..60,
        early_a in 0u64..5,
        early_extra in 1u64..6,
    ) {
        let mut recs = Vec::new();
        for k in 0..intervals {
            let t_sched = 2_000 + k * 100_000;
            recs.push(sched_record(t_sched, k, 5, 10, 100));
            recs.push(data_record(t_sched + 5_000, false));
            recs.push(data_record(t_sched + 6_500, true));
        }
        let end = SimTime::from_us(2_000 + intervals * 100_000);
        let mk = |early: u64| {
            analyze_client(
                &recs,
                CLIENT,
                end,
                &PolicyParams {
                    early_transition: SimDuration::from_ms(early),
                    ..PolicyParams::default()
                },
            )
        };
        let a = mk(early_a);
        let b = mk(early_a + early_extra);
        prop_assert_eq!(a.missed, 0);
        prop_assert_eq!(b.missed, 0);
        prop_assert!(b.energy_mj >= a.energy_mj - 1e-6, "earlier wake can't be cheaper");
    }
}
