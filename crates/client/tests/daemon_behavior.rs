//! Behavioral tests for the client power daemon, driven by a scripted
//! proxy stand-in over a real radio world: wake/sleep discipline, miss
//! recovery, the packet-ordering rules, and the §5 optimization.

use std::any::Any;

use powerburst_client::{ClientConfig, PowerClient};
use powerburst_core::{Schedule, ScheduleEntry};
use powerburst_energy::CardSpec;
use powerburst_net::{
    ports, AccessPoint, AirtimeModel, ApDelayParams, Ctx, Endpoint, HostAddr, IfaceId, LinkSpec,
    Node, NodeConfig, Packet, SockAddr, TimerToken, World, AP_RADIO, AP_WIRED,
};
use powerburst_sim::{ClockModel, SimDuration, SimTime};
use powerburst_traffic::{App, CountingSink};
use powerburst_transport::StreamPayload;

const CLIENT: HostAddr = HostAddr(100);
const PROXY: HostAddr = HostAddr(3);
const INTERVAL_MS: u64 = 100;

/// A scripted proxy: broadcasts a fixed schedule every interval and sends a
/// small marked burst at the client's rendezvous point. Knobs simulate
/// misbehavior for the recovery tests.
struct ScriptedProxy {
    seq: u64,
    /// Skip broadcasting these schedule sequence numbers entirely.
    skip_broadcasts: Vec<u64>,
    /// Don't set the ToS mark on these burst sequence numbers.
    unmark_bursts: Vec<u64>,
    /// Flag schedules as unchanged (§5).
    flag_unchanged: bool,
    /// Stop all activity after this many intervals.
    max_intervals: u64,
    bursts_sent: u64,
}

impl ScriptedProxy {
    fn new() -> ScriptedProxy {
        ScriptedProxy {
            seq: 0,
            skip_broadcasts: Vec::new(),
            unmark_bursts: Vec::new(),
            flag_unchanged: false,
            max_intervals: u64::MAX,
            bursts_sent: 0,
        }
    }

    fn schedule(&self) -> Schedule {
        Schedule {
            seq: self.seq,
            entries: vec![ScheduleEntry {
                client: CLIENT,
                rp_offset: SimDuration::from_ms(5),
                duration: SimDuration::from_ms(10),
            }],
            next_srp: SimDuration::from_ms(INTERVAL_MS),
            unchanged: self.flag_unchanged && self.seq > 0,
            fixed_slots: false,
            saturated: false,
        }
    }
}

const T_SRP: TimerToken = 1;
const T_BURST: TimerToken = 2;

impl Node for ScriptedProxy {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_ms(1), T_SRP);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _iface: IfaceId, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        match token {
            T_SRP => {
                if self.seq >= self.max_intervals {
                    return;
                }
                if !self.skip_broadcasts.contains(&self.seq) {
                    let pkt = Packet::udp(
                        0,
                        SockAddr::new(PROXY, ports::SCHEDULE),
                        SockAddr::new(HostAddr::BROADCAST, ports::SCHEDULE),
                        self.schedule().encode(),
                    );
                    ctx.send_assigning(IfaceId(0), pkt);
                }
                ctx.set_timer(SimDuration::from_ms(5), T_BURST);
                ctx.set_timer(SimDuration::from_ms(INTERVAL_MS), T_SRP);
                self.seq += 1;
            }
            T_BURST => {
                let burst_no = self.bursts_sent;
                self.bursts_sent += 1;
                for k in 0..2u64 {
                    let mut pkt = Packet::udp(
                        0,
                        SockAddr::new(PROXY, ports::MEDIA),
                        SockAddr::new(CLIENT, ports::MEDIA),
                        StreamPayload { flow: 0, seq: burst_no * 2 + k }.encode(400),
                    );
                    pkt.tos_mark = k == 1 && !self.unmark_bursts.contains(&burst_no);
                    ctx.send_assigning(IfaceId(0), pkt);
                }
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sink that panics if the daemon delivers while the radio is deaf —
/// regular CountingSink plus schedule filtering is handled by the daemon.
fn build_world(proxy: ScriptedProxy, client_cfg: ClientConfig) -> (World, powerburst_net::NodeId) {
    let mut world = World::new(5);
    let p = world.add_node(Box::new(proxy), NodeConfig::wired(PROXY));
    let ap = world.add_node(
        Box::new(AccessPoint::new(ApDelayParams::deterministic(300.0))),
        NodeConfig::infrastructure(),
    );
    let c = world.add_node(
        Box::new(PowerClient::new(client_cfg, Box::new(CountingSink::new()) as Box<dyn App>)),
        NodeConfig {
            host: Some(CLIENT),
            clock: ClockModel::perfect(),
            wnic: Some(CardSpec::WAVELAN_DSSS),
        },
    );
    world.add_link(
        Endpoint { node: p, iface: IfaceId(0) },
        Endpoint { node: ap, iface: AP_WIRED },
        LinkSpec::FAST_ETHERNET,
    );
    world.set_medium(AirtimeModel::DSSS_11MBPS, SimDuration::from_ms(150), ap);
    world.attach_wireless(ap, AP_RADIO);
    world.attach_wireless(c, IfaceId(0));
    (world, c)
}

fn run(proxy: ScriptedProxy, cfg: ClientConfig, secs: u64) -> (World, powerburst_net::NodeId) {
    let (mut world, c) = build_world(proxy, cfg);
    world.run_until(SimTime::from_secs(secs));
    (world, c)
}

#[test]
fn synced_client_sleeps_between_bursts_and_loses_nothing() {
    let (mut world, c) = run(ScriptedProxy::new(), ClientConfig::new(CLIENT), 10);
    let stats = *world.stats(c);
    assert_eq!(stats.missed_frames, 0, "no data lost");
    let rep = world.wnic_report(c).unwrap();
    let sleep_frac = rep.sleep.as_secs_f64() / 10.0;
    assert!(sleep_frac > 0.6, "slept {sleep_frac:.2} of the run");
    let pc = world.node_mut::<PowerClient>(c);
    assert!(pc.stats.marks_received > 90, "marks {}", pc.stats.marks_received);
    assert_eq!(pc.stats.schedules_missed, 0);
    // The application saw every packet (2 per interval, ~100 intervals).
    let sink = pc.app_mut::<CountingSink>();
    assert!(sink.packets >= 190, "app packets {}", sink.packets);
    assert_eq!(sink.lost(), 0);
}

#[test]
fn skipped_broadcast_triggers_miss_recovery() {
    let mut proxy = ScriptedProxy::new();
    proxy.skip_broadcasts = vec![20, 21];
    // Without a schedule the proxy still bursts; the client (awake in miss
    // recovery) receives the data anyway.
    let (mut world, c) = run(proxy, ClientConfig::new(CLIENT), 5);
    let stats = *world.stats(c);
    let pc = world.node_mut::<PowerClient>(c);
    assert!(pc.stats.schedules_missed >= 1, "missed {}", pc.stats.schedules_missed);
    assert!(
        pc.stats.missed_sched_wait > SimDuration::from_ms(50),
        "miss wait {}",
        pc.stats.missed_sched_wait
    );
    // Recovery: later schedules were received and bursts resumed normally.
    assert!(pc.stats.schedules_received >= 45);
    assert_eq!(stats.missed_frames, 0, "miss recovery kept the radio on");
}

#[test]
fn lost_mark_is_recovered_via_the_next_schedule() {
    let mut proxy = ScriptedProxy::new();
    proxy.unmark_bursts = vec![10];
    let (mut world, c) = run(proxy, ClientConfig::new(CLIENT), 5);
    let stats = *world.stats(c);
    let pc = world.node_mut::<PowerClient>(c);
    // Ordering rule (1): the next schedule found the client still awaiting
    // its mark and was deferred, then applied.
    assert!(pc.stats.deferred_schedules >= 1);
    assert_eq!(stats.missed_frames, 0);
    assert!(pc.stats.schedules_received >= 45);
}

#[test]
fn unchanged_flag_skips_srp_wakes_without_losses() {
    let mut proxy = ScriptedProxy::new();
    proxy.flag_unchanged = true;
    let mut cfg = ClientConfig::new(CLIENT);
    cfg.skip_unchanged = true;
    let (mut world, c) = run(proxy, cfg, 10);
    let stats = *world.stats(c);
    let rep = world.wnic_report(c).unwrap();
    let sleep_with = rep.sleep.as_secs_f64();
    let pc = world.node_mut::<PowerClient>(c);
    assert!(pc.stats.skipped_srp_wakes > 20, "skipped {}", pc.stats.skipped_srp_wakes);
    assert_eq!(stats.missed_frames, 0, "optimization must not cost data");

    // And it must actually save energy versus not skipping.
    let mut proxy2 = ScriptedProxy::new();
    proxy2.flag_unchanged = true;
    let (mut world2, c2) = run(proxy2, ClientConfig::new(CLIENT), 10);
    let rep2 = world2.wnic_report(c2).unwrap();
    assert!(
        sleep_with > rep2.sleep.as_secs_f64(),
        "skip-unchanged slept {:.2}s vs baseline {:.2}s",
        sleep_with,
        rep2.sleep.as_secs_f64()
    );
}

#[test]
fn proxy_going_silent_leaves_client_awake_but_lossless() {
    let mut proxy = ScriptedProxy::new();
    proxy.max_intervals = 20; // proxy dies at t=2s
    let (mut world, c) = run(proxy, ClientConfig::new(CLIENT), 6);
    let stats = *world.stats(c);
    assert_eq!(stats.missed_frames, 0);
    let rep = world.wnic_report(c).unwrap();
    // After the proxy dies the client declares a miss and stays in
    // high-power mode waiting (§4.3 worst-case behaviour).
    assert!(rep.sleep < SimDuration::from_secs(3));
    let pc = world.node_mut::<PowerClient>(c);
    assert!(pc.stats.schedules_missed >= 1);
}

#[test]
fn larger_early_transition_wakes_earlier_and_wastes_more() {
    let mk = |early_ms: u64| {
        let mut cfg = ClientConfig::new(CLIENT);
        cfg.early_transition = SimDuration::from_ms(early_ms);
        let (mut world, c) = run(ScriptedProxy::new(), cfg, 10);
        let rep = world.wnic_report(c).unwrap();
        let pc = world.node_mut::<PowerClient>(c);
        (rep.total_mj, pc.stats.early_wait)
    };
    let (e2, w2) = mk(2);
    let (e10, w10) = mk(10);
    assert!(w10 > w2, "early wait {w10} !> {w2}");
    assert!(e10 > e2, "energy {e10} !> {e2}");
}
