//! # powerburst-client
//!
//! The mobile-client power daemon for the ICPP 2004 transparent-proxy
//! reproduction: the "simple daemon" of §3.2.1 that reads schedule
//! broadcasts, wakes the WNIC at its rendezvous points (with adaptive
//! delay compensation, §3.3), sleeps on the marked packet, recovers from
//! missed schedules, and hosts the unmodified client application.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;

pub use daemon::{ClientConfig, ClientPowerStats, CompMode, PowerClient};
