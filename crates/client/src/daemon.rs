//! The client power daemon.
//!
//! §3.2.1: "The client must also read the UDP broadcast packet from the
//! proxy, which contains its rendezvous point as well as the arrival time
//! of the next schedule. The client can turn off its WNIC until its
//! rendezvous point is reached ... After the client receives its burst, it
//! transitions the WNIC back to low-power mode until the next schedule
//! packet is due."
//!
//! The daemon implements:
//!
//! * **Adaptive delay compensation** (§3.3): every wake-up is anchored a
//!   fixed amount after the *arrival* of the previous schedule, waking an
//!   *early-transition amount* (plus the radio's 2 ms wake transition)
//!   before the predicted instant;
//! * a **fixed-anchor** variant (ablation): wake-ups anchored to the first
//!   schedule only, so clock drift accumulates;
//! * **packet-ordering rules** (§3.2.2): a schedule arriving before the
//!   current burst's marked packet is deferred; data arriving before its
//!   schedule is accepted;
//! * **miss recovery**: a client that misses the schedule broadcast keeps
//!   its WNIC in high-power mode until the next schedule arrives (§4.3);
//! * the **§5 future-work optimization**: when the proxy flags the schedule
//!   unchanged, the client may skip the next SRP wake-up entirely.

use std::any::Any;

use powerburst_obs::{Counter, EventKind, Hist, Recorder};
use powerburst_sim::{LocalTime, SimDuration, SimTime};

use powerburst_core::Schedule;
use powerburst_net::{ports, Ctx, HostAddr, IfaceId, Node, Packet, Proto, TimerToken};
use powerburst_traffic::{App, APP_TOKEN};

/// Delay-compensation algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompMode {
    /// Anchor every wake-up to the previous schedule's arrival (§3.3).
    Adaptive,
    /// Anchor to the first schedule's arrival only (non-adaptive baseline;
    /// clock drift and AP-delay level shifts accumulate unchecked).
    FixedAnchor,
    /// Never sleep (the naive client, expressed as a daemon config).
    AlwaysOn,
}

/// Client daemon configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// This client's host address.
    pub me: HostAddr,
    /// Early-transition amount (§3.3; the paper sweeps 0–10 ms, default 6).
    pub early_transition: SimDuration,
    /// The WNIC's sleep→idle transition time (2 ms for WaveLAN); the
    /// daemon must lead its wake-ups by this much to be listening in time.
    pub wake_transition: SimDuration,
    /// Compensation algorithm.
    pub comp: CompMode,
    /// Honor the §5 `unchanged` flag by skipping the next SRP wake.
    pub skip_unchanged: bool,
    /// How long past the predicted arrival to wait before declaring the
    /// schedule missed.
    pub miss_slack: SimDuration,
    /// Don't bother sleeping for gaps shorter than this.
    pub min_sleep: SimDuration,
}

impl ClientConfig {
    /// Paper-typical defaults for host `me`.
    pub fn new(me: HostAddr) -> ClientConfig {
        ClientConfig {
            me,
            early_transition: SimDuration::from_ms(6),
            wake_transition: SimDuration::from_ms(2),
            comp: CompMode::Adaptive,
            skip_unchanged: false,
            miss_slack: SimDuration::from_ms(15),
            min_sleep: SimDuration::from_ms(5),
        }
    }
}

/// Counters for the energy-waste analysis (Figure 6) and diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientPowerStats {
    /// Schedule broadcasts received.
    pub schedules_received: u64,
    /// SRP wake-ups where no schedule arrived in time.
    pub schedules_missed: u64,
    /// Marked (end-of-burst) packets received.
    pub marks_received: u64,
    /// Time spent awake waiting for a predicted packet that had not yet
    /// arrived (the "Early" bar of Figure 6).
    pub early_wait: SimDuration,
    /// Time spent awake because a schedule was missed (the "MissedSched"
    /// bar of Figure 6).
    pub missed_sched_wait: SimDuration,
    /// Schedules deferred under packet-ordering rule (1).
    pub deferred_schedules: u64,
    /// Data packets accepted before their schedule (rule 2).
    pub data_before_schedule: u64,
    /// SRP wake-ups skipped thanks to the `unchanged` flag (§5).
    pub skipped_srp_wakes: u64,
}

const T_WAKE_SRP: TimerToken = 1;
const T_MISS: TimerToken = 2;
const T_WAKE_SLOT: TimerToken = 0x10; // + slot index
const MAX_SLOTS: TimerToken = 0x40;
const T_SLOT_END: TimerToken = 0x100; // + slot index

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WokeFor {
    Srp,
    Burst,
}

impl WokeFor {
    /// Static label for observability events.
    fn tag(self) -> &'static str {
        match self {
            WokeFor::Srp => "srp",
            WokeFor::Burst => "burst",
        }
    }
}

/// A slot of the active schedule that applies to this client.
#[derive(Debug, Clone, Copy)]
struct MySlot {
    duration: SimDuration,
    /// Sleep at slot end even without a mark (broadcast/static slots).
    sleep_at_end: bool,
}

/// The power-daemon node hosting an [`App`].
pub struct PowerClient {
    cfg: ClientConfig,
    app: Box<dyn App>,
    /// Slots of the schedule currently in force.
    slots: Vec<MySlot>,
    /// Pending wake instants (for sleep decisions).
    planned_wakes: Vec<SimTime>,
    /// Deferred schedule under ordering rule (1), with its arrival time.
    pending_schedule: Option<(Schedule, SimTime)>,
    /// Recycled schedule buffer: broadcasts are decoded into it
    /// ([`Schedule::decode_into`]) and it is returned after application,
    /// so the once-per-interval decode reuses one entries allocation.
    decode_buf: Schedule,
    /// Awaiting the marked packet of a burst.
    in_burst: bool,
    /// Set while awake after a wake-up, until the awaited packet arrives:
    /// (reason, instant the radio became able to listen).
    woke_for: Option<(WokeFor, SimTime)>,
    /// Set when a miss was declared; cleared (and billed) at next schedule.
    miss_since: Option<SimTime>,
    /// Fixed-anchor state: (first schedule arrival on the *local* clock,
    /// its seq, the interval). Predictions extrapolate on the local clock,
    /// so crystal drift accumulates — the §3.3 motivation for adaptive.
    anchor: Option<(LocalTime, u64, SimDuration)>,
    synced: bool,
    /// Statistics.
    pub stats: ClientPowerStats,
    /// Observability handle; disabled by default.
    obs: Recorder,
}

impl PowerClient {
    /// Build a daemon hosting `app`.
    pub fn new(cfg: ClientConfig, app: Box<dyn App>) -> PowerClient {
        PowerClient {
            cfg,
            app,
            slots: Vec::new(),
            planned_wakes: Vec::new(),
            pending_schedule: None,
            decode_buf: Schedule::default(),
            in_burst: false,
            woke_for: None,
            miss_since: None,
            anchor: None,
            synced: false,
            stats: ClientPowerStats::default(),
            obs: Recorder::disabled(),
        }
    }

    /// Attach an observability recorder.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.obs = rec;
    }

    /// Access the hosted application.
    pub fn app_mut<T: App>(&mut self) -> &mut T {
        self.app.as_any_mut().downcast_mut().expect("app type")
    }

    /// Total lead time before a predicted arrival.
    fn lead(&self) -> SimDuration {
        self.cfg.early_transition + self.cfg.wake_transition
    }

    /// Sleep unless a wake-up is imminent or we're mid-burst/missing.
    fn sleep_if_idle(&mut self, ctx: &mut Ctx<'_>) {
        if self.cfg.comp == CompMode::AlwaysOn {
            return;
        }
        if self.in_burst || self.miss_since.is_some() || !self.synced {
            return;
        }
        // Expecting a schedule any moment (SRP wake already fired):
        // sleeping now would turn a late mark into a missed interval.
        if self.woke_for.map(|(w, _)| w) == Some(WokeFor::Srp) {
            return;
        }
        let now = ctx.now();
        // Keep wakes at exactly `now`: a slot that begins immediately after
        // the schedule must not put the radio to sleep for zero time (the
        // 2 ms wake transition would make it deaf to the burst head).
        self.planned_wakes.retain(|&t| t >= now);
        let next = self.planned_wakes.iter().min().copied();
        match next {
            Some(t) if t.since(now) < self.cfg.min_sleep => { /* not worth it */ }
            _ => ctx.radio_sleep(),
        }
    }

    /// Bill early-wait waste when the awaited packet shows up.
    fn account_arrival(&mut self, now: SimTime) {
        if let Some((woke, listen_start)) = self.woke_for.take() {
            let lead = now.since(listen_start);
            self.stats.early_wait += lead;
            self.obs.observe(Hist::WakeLeadUs, lead.as_us());
            self.obs.event(
                now.as_us(),
                EventKind::WakeLead {
                    client: self.cfg.me.0,
                    lead_us: lead.as_us(),
                    woke_for: woke.tag(),
                },
            );
        }
    }

    fn handle_schedule(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) {
        let mut sched = std::mem::take(&mut self.decode_buf);
        if !Schedule::decode_into(&pkt.payload, &mut sched) {
            self.decode_buf = sched;
            return;
        }
        self.stats.schedules_received += 1;
        // Ordering rule (1): mid-burst schedules wait for the mark — unless
        // one is already pending, in which case the mark was evidently lost
        // and we adopt the newest schedule immediately.
        if self.in_burst && self.pending_schedule.is_none() {
            self.stats.deferred_schedules += 1;
            // The schedule did arrive: the SRP wait (and its miss deadline)
            // is satisfied even though application is deferred.
            ctx.cancel_timer(T_MISS);
            if self.woke_for.map(|(w, _)| w) == Some(WokeFor::Srp) {
                self.account_arrival(ctx.now());
            }
            self.pending_schedule = Some((sched, ctx.now()));
            return;
        }
        self.in_burst = false;
        self.pending_schedule = None;
        let arrival = ctx.now();
        self.apply_schedule(ctx, sched, arrival);
    }

    /// Put a schedule into force. `arrival` is when the broadcast landed —
    /// all rendezvous offsets are measured from it, which matters when a
    /// deferred schedule is applied late.
    fn apply_schedule(&mut self, ctx: &mut Ctx<'_>, sched: Schedule, arrival: SimTime) {
        let now = ctx.now();
        ctx.cancel_timer(T_MISS);
        self.account_arrival(now);
        if let Some(since) = self.miss_since.take() {
            self.stats.missed_sched_wait += now.since(since);
        }
        // A deferred schedule whose interval already elapsed is useless:
        // its rendezvous points are in the past. Invalidate local plans and
        // stay awake until a fresh schedule arrives.
        if now > arrival + sched.next_srp {
            // Only indices the previous interval actually armed can be
            // pending (wake timers per slot, end timers per woken slot).
            for k in 0..self.slots.len() as TimerToken {
                ctx.cancel_timer(T_WAKE_SLOT + k);
                ctx.cancel_timer(T_SLOT_END + k);
            }
            ctx.cancel_timer(T_WAKE_SRP);
            self.slots.clear();
            self.planned_wakes.clear();
            self.miss_since = Some(now);
            self.decode_buf = sched;
            return;
        }
        self.synced = true;
        self.obs.incr(Counter::ClientSchedulesApplied);
        if self.anchor.is_none() {
            self.anchor = Some((ctx.to_local(arrival), sched.seq, sched.next_srp));
        }

        // Fixed-anchor compensation predicts this schedule's arrival by
        // extrapolating the first arrival on the client's own clock;
        // offsets below are taken from that *predicted* arrival instead of
        // the actual one, so prediction error (clock drift × elapsed time,
        // plus AP delay level shifts) accumulates across the run.
        let base_shift: i64 = match (self.cfg.comp, self.anchor) {
            (CompMode::FixedAnchor, Some((l0, seq0, interval))) => {
                let k = sched.seq.saturating_sub(seq0) as i64;
                let predicted_local = l0.0 + interval.as_us() as i64 * k;
                predicted_local - ctx.to_local(arrival).0
            }
            _ => 0,
        };
        // Wake delay from `now` for an offset measured from `arrival`.
        let shift = |d: SimDuration| -> SimDuration {
            let us = d.as_us() as i64 + base_shift + arrival.as_us() as i64 - now.as_us() as i64;
            SimDuration::from_us(us.max(0) as u64)
        };

        // Cancel any stale wake-ups from the previous interval; only the
        // slot indices it armed can hold pending timers.
        for k in 0..self.slots.len() as TimerToken {
            ctx.cancel_timer(T_WAKE_SLOT + k);
            ctx.cancel_timer(T_SLOT_END + k);
        }
        ctx.cancel_timer(T_WAKE_SRP);
        self.planned_wakes.clear();
        self.slots.clear();

        let lead = self.lead();
        // `sched` is owned, so its slots can be walked directly while the
        // daemon's own state is updated — no collected copy needed.
        let mut any_slots = false;
        for e in sched.slots_for(self.cfg.me).take(MAX_SLOTS as usize / 2) {
            any_slots = true;
            // A schedule applied late (deferred past its own burst) must
            // not arm wake-ups for slots that already completed — the mark
            // that released it was that burst's end.
            if arrival + e.rp_offset + e.duration <= now {
                continue;
            }
            let k = self.slots.len();
            self.slots.push(MySlot {
                duration: e.duration,
                sleep_at_end: e.client.is_broadcast() || sched.fixed_slots,
            });
            let wake_off = shift(e.rp_offset.saturating_sub(lead));
            ctx.set_timer_local(wake_off, T_WAKE_SLOT + k as TimerToken);
            self.planned_wakes.push(now + wake_off);
        }

        // Next SRP wake — possibly skipped under the §5 optimization, in
        // which case this schedule is reused for the following interval.
        if sched.unchanged && self.cfg.skip_unchanged && any_slots {
            self.stats.skipped_srp_wakes += 1;
            self.obs.incr(Counter::ClientSkippedWakes);
            for e in sched.slots_for(self.cfg.me).take(MAX_SLOTS as usize / 2) {
                let idx = self.slots.len();
                self.slots.push(MySlot {
                    duration: e.duration,
                    sleep_at_end: e.client.is_broadcast() || sched.fixed_slots,
                });
                let wake_off = shift(sched.next_srp + e.rp_offset.saturating_sub(lead));
                ctx.set_timer_local(wake_off, T_WAKE_SLOT + idx as TimerToken);
                self.planned_wakes.push(now + wake_off);
            }
            let srp_off = shift((sched.next_srp * 2).saturating_sub(lead));
            ctx.set_timer_local(srp_off, T_WAKE_SRP);
            self.planned_wakes.push(now + srp_off);
        } else {
            let srp_off = shift(sched.next_srp.saturating_sub(lead));
            ctx.set_timer_local(srp_off, T_WAKE_SRP);
            self.planned_wakes.push(now + srp_off);
        }

        self.sleep_if_idle(ctx);
        // Recycle the schedule's entries buffer for the next decode.
        self.decode_buf = sched;
    }

    fn handle_data(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let now = ctx.now();
        if self.woke_for.map(|(w, _)| w) == Some(WokeFor::Burst) {
            self.account_arrival(now);
        } else if self.woke_for.is_some() && !self.in_burst {
            // Ordering rule (2): data can precede its schedule.
            self.stats.data_before_schedule += 1;
        }
        let marked = pkt.tos_mark;
        self.app.on_packet(ctx, pkt);
        if marked {
            self.stats.marks_received += 1;
            self.obs.incr(Counter::ClientMarksSeen);
            self.in_burst = false;
            if let Some((sched, arrival)) = self.pending_schedule.take() {
                self.apply_schedule(ctx, sched, arrival);
            } else {
                self.sleep_if_idle(ctx);
            }
        }
    }
}

impl Node for PowerClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Unsynced: stay in high power until the first schedule arrives.
        self.app.on_start(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _iface: IfaceId, pkt: Packet) {
        if pkt.proto == Proto::Udp && pkt.dst.port == ports::SCHEDULE {
            self.handle_schedule(ctx, &pkt);
        } else {
            self.handle_data(ctx, pkt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if token & APP_TOKEN != 0 {
            self.app.on_timer(ctx, token);
            return;
        }
        let now = ctx.now();
        match token {
            T_WAKE_SRP => {
                ctx.radio_wake();
                self.woke_for = Some((WokeFor::Srp, now + self.cfg.wake_transition));
                ctx.set_timer(self.lead() + self.cfg.miss_slack, T_MISS);
            }
            T_MISS if self.woke_for.map(|(w, _)| w) == Some(WokeFor::Srp) => {
                // No schedule: stay awake until one arrives (§4.3).
                self.stats.schedules_missed += 1;
                self.obs.incr(Counter::ClientSchedulesMissed);
                self.woke_for = None;
                self.miss_since = Some(now);
            }
            t if (T_WAKE_SLOT..T_WAKE_SLOT + MAX_SLOTS).contains(&t) => {
                let k = (t - T_WAKE_SLOT) as usize;
                ctx.radio_wake();
                let Some(slot) = self.slots.get(k).copied() else { return };
                self.woke_for = Some((WokeFor::Burst, now + self.cfg.wake_transition));
                if slot.sleep_at_end {
                    // Fixed slots end on their own clock: linger briefly
                    // for late frames, then sleep without needing a mark.
                    ctx.set_timer(
                        self.lead() + slot.duration + SimDuration::from_ms(2),
                        T_SLOT_END + k as TimerToken,
                    );
                } else {
                    self.in_burst = true;
                }
            }
            t if (T_SLOT_END..T_SLOT_END + MAX_SLOTS).contains(&t) => {
                // Fixed/broadcast slot over; mark not required. Only the
                // burst expectation ends here — an SRP expectation (whose
                // wake may already have fired) must survive.
                if self.woke_for.map(|(w, _)| w) == Some(WokeFor::Burst) {
                    self.woke_for = None;
                }
                if let Some((sched, arrival)) = self.pending_schedule.take() {
                    self.in_burst = false;
                    self.apply_schedule(ctx, sched, arrival);
                } else {
                    self.sleep_if_idle(ctx);
                }
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
