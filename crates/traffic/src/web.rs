//! Web-browsing workload: a request/response byte server and a scripted
//! multi-connection browser.
//!
//! The paper's TCP experiments have clients "browsing the web, which
//! generates multiple concurrent TCP streams per client", driven by a
//! script "generated prior to the experiments to ensure that the traffic
//! pattern remained identical across different experiments" (§4.2). Our
//! browser pre-generates its page script from a seed, so two runs with the
//! same seed replay byte-identical workloads.
//!
//! The application protocol is deliberately minimal (an 8-byte big-endian
//! length request, answered by that many bytes): the proxy is transparent
//! and "should ... avoid parsing packet data, so that it can support any
//! protocol" (§1) — nothing in the system ever inspects these payloads.
//! The same server doubles as the FTP server (one connection, one huge
//! object).

use std::any::Any;

use bytes::{BufMut, Bytes, BytesMut};
use powerburst_sim::{FastHashMap, SimDuration, SimTime};
use rand::Rng;

use powerburst_net::{
    Ctx, IfaceId, Node, Packet, PatternCache, Proto, SockAddr, TcpFlags, TimerToken,
};
use powerburst_transport::{TcpConfig, TcpEndpoint, TcpEvent};

use crate::app::{drive_endpoint, App, APP_TOKEN, CLIENT_RADIO};

/// Encode a request for `size` response bytes.
pub fn encode_request(size: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(8);
    b.put_u64(size);
    b.freeze()
}

/// The server's wired interface.
const SERVER_IFACE: IfaceId = IfaceId(0);

struct ServerConn {
    ep: TcpEndpoint,
    reqbuf: Vec<u8>,
    closing: bool,
}

/// Request/response byte server (HTTP and FTP stand-in).
pub struct ByteServer {
    addr: SockAddr,
    tcp: TcpConfig,
    conns: Vec<ServerConn>,
    by_remote: FastHashMap<SockAddr, usize>,
    /// Response-body filler templates, owned by this server so payload
    /// construction stays refcount-only without shared thread state.
    patterns: PatternCache,
    /// Total payload bytes served.
    pub bytes_served: u64,
    /// Connections accepted.
    pub accepted: u64,
}

impl ByteServer {
    /// New server listening at `addr`.
    pub fn new(addr: SockAddr, tcp: TcpConfig) -> ByteServer {
        ByteServer {
            addr,
            tcp,
            conns: Vec::new(),
            by_remote: FastHashMap::default(),
            patterns: PatternCache::new(),
            bytes_served: 0,
            accepted: 0,
        }
    }

    fn conn_for(&mut self, remote: SockAddr, syn: bool) -> Option<usize> {
        if let Some(&i) = self.by_remote.get(&remote) {
            return Some(i);
        }
        if !syn {
            return None;
        }
        let idx = self.conns.len();
        self.conns.push(ServerConn {
            ep: TcpEndpoint::passive(self.addr, remote, self.tcp),
            reqbuf: Vec::new(),
            closing: false,
        });
        self.by_remote.insert(remote, idx);
        self.accepted += 1;
        Some(idx)
    }

    fn service(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let now = ctx.now();
        let conn = &mut self.conns[idx];
        for chunk in conn.ep.delivered_mut().drain(..) {
            conn.reqbuf.extend_from_slice(&chunk);
        }
        // Serve every complete 8-byte request. Response bodies are
        // refcount-only views into this server's 0x42 pattern template.
        while conn.reqbuf.len() >= 8 {
            let size = u64::from_be_bytes(conn.reqbuf[..8].try_into().expect("8"));
            conn.reqbuf.drain(..8);
            self.bytes_served += size;
            let body = self.patterns.bytes(0x42, size as usize);
            conn.ep.send(now, body);
        }
        let mut remote_fin = false;
        for ev in conn.ep.events_mut().drain(..) {
            remote_fin |= ev == TcpEvent::RemoteFin;
        }
        if remote_fin && !conn.closing {
            conn.closing = true;
            conn.ep.close(now);
        }
        drive_endpoint(ctx, SERVER_IFACE, &mut conn.ep, idx as TimerToken);
    }
}

impl Node for ByteServer {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _iface: IfaceId, pkt: Packet) {
        if pkt.proto != Proto::Tcp || pkt.dst != self.addr {
            return;
        }
        let syn = pkt.tcp_header().flags.contains(TcpFlags::SYN);
        let Some(idx) = self.conn_for(pkt.src, syn) else { return };
        let now = ctx.now();
        self.conns[idx].ep.on_packet(now, &pkt);
        self.service(ctx, idx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        let idx = token as usize;
        if idx < self.conns.len() {
            let now = ctx.now();
            self.conns[idx].ep.on_tick(now);
            self.service(ctx, idx);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One page visit in a browsing script.
#[derive(Debug, Clone)]
pub struct Page {
    /// Think time before this page is requested.
    pub think: SimDuration,
    /// Object sizes fetched for this page (first is the document).
    pub objects: Vec<u64>,
    /// Concurrent connections used to fetch them.
    pub parallelism: usize,
}

/// Parameters for script generation.
#[derive(Debug, Clone, Copy)]
pub struct WebScriptConfig {
    /// Number of pages to visit.
    pub pages: usize,
    /// Think-time range, seconds.
    pub think_s: (f64, f64),
    /// Objects per page range.
    pub objects_per_page: (usize, usize),
    /// Object size range, bytes (log-uniform; heavy-ish tail).
    pub object_bytes: (u64, u64),
    /// Max concurrent connections per page.
    pub max_parallel: usize,
}

impl Default for WebScriptConfig {
    fn default() -> Self {
        WebScriptConfig {
            pages: 30,
            think_s: (4.0, 12.0),
            objects_per_page: (2, 5),
            object_bytes: (2_000, 30_000),
            max_parallel: 2,
        }
    }
}

/// Generate a deterministic browsing script.
pub fn generate_script<R: Rng + ?Sized>(cfg: &WebScriptConfig, rng: &mut R) -> Vec<Page> {
    let mut pages = Vec::with_capacity(cfg.pages);
    for _ in 0..cfg.pages {
        let think = SimDuration::from_secs_f64(rng.random_range(cfg.think_s.0..=cfg.think_s.1));
        let n = rng.random_range(cfg.objects_per_page.0..=cfg.objects_per_page.1);
        let (lo, hi) = (cfg.object_bytes.0 as f64, cfg.object_bytes.1 as f64);
        let objects = (0..n)
            .map(|_| {
                // Log-uniform sizes: many small objects, a few big ones.
                let u: f64 = rng.random();
                (lo * (hi / lo).powf(u)).round() as u64
            })
            .collect();
        let parallelism = rng.random_range(1..=cfg.max_parallel);
        pages.push(Page { think, objects, parallelism });
    }
    pages
}

/// Browser statistics.
#[derive(Debug, Clone, Default)]
pub struct BrowserStats {
    /// Completed object fetch latencies, seconds.
    pub object_latencies_s: Vec<f64>,
    /// Total payload bytes received.
    pub bytes_received: u64,
    /// Pages fully fetched.
    pub pages_done: usize,
    /// Objects fully fetched.
    pub objects_done: usize,
}

impl BrowserStats {
    /// Mean object latency, seconds (0 when none completed).
    pub fn mean_latency_s(&self) -> f64 {
        if self.object_latencies_s.is_empty() {
            return 0.0;
        }
        self.object_latencies_s.iter().sum::<f64>() / self.object_latencies_s.len() as f64
    }
}

struct BrowserConn {
    ep: TcpEndpoint,
    /// Objects (sizes) this connection still has to fetch, in order.
    queue: Vec<u64>,
    /// Outstanding object: (size, bytes received so far, request time).
    current: Option<(u64, u64, SimTime)>,
    connected: bool,
    done: bool,
}

const THINK_TIMER: TimerToken = APP_TOKEN | 0x01;
const CONN_TOKEN_BASE: TimerToken = APP_TOKEN | 0x100;

/// The scripted browser app (runs on a client node).
pub struct WebClientApp {
    me_host: powerburst_net::HostAddr,
    server: SockAddr,
    tcp: TcpConfig,
    script: Vec<Page>,
    page_idx: usize,
    /// A page is being fetched (guards against double completion from
    /// stray late segments).
    page_open: bool,
    next_port: u16,
    conns: Vec<BrowserConn>,
    /// Statistics.
    pub stats: BrowserStats,
}

impl WebClientApp {
    /// New browser for the given pre-generated script.
    pub fn new(
        me_host: powerburst_net::HostAddr,
        server: SockAddr,
        tcp: TcpConfig,
        script: Vec<Page>,
    ) -> WebClientApp {
        WebClientApp {
            me_host,
            server,
            tcp,
            script,
            page_idx: 0,
            page_open: false,
            next_port: 10_000,
            conns: Vec::new(),
            stats: BrowserStats::default(),
        }
    }

    /// Browser statistics so far.
    pub fn stats(&self) -> &BrowserStats {
        &self.stats
    }

    /// True when the whole script has been fetched.
    pub fn finished(&self) -> bool {
        self.page_idx >= self.script.len() && self.conns.iter().all(|c| c.done)
    }

    fn start_page(&mut self, ctx: &mut Ctx<'_>) {
        let Some(page) = self.script.get(self.page_idx) else { return };
        self.page_open = true;
        let par = page.parallelism.max(1).min(page.objects.len().max(1));
        // Round-robin the objects over `par` fresh connections.
        let mut queues: Vec<Vec<u64>> = vec![Vec::new(); par];
        for (i, &obj) in page.objects.iter().enumerate() {
            queues[i % par].push(obj);
        }
        self.conns.clear();
        let now = ctx.now();
        for queue in queues {
            let port = self.next_port;
            self.next_port += 1;
            let local = SockAddr::new(self.me_host, port);
            let mut ep = TcpEndpoint::active(local, self.server, self.tcp);
            ep.connect(now);
            self.conns.push(BrowserConn {
                ep,
                queue,
                current: None,
                connected: false,
                done: false,
            });
        }
        for i in 0..self.conns.len() {
            self.drive_conn(ctx, i);
        }
    }

    fn request_next(&mut self, ctx: &mut Ctx<'_>, i: usize) {
        let now = ctx.now();
        let conn = &mut self.conns[i];
        if conn.current.is_some() || conn.done {
            return;
        }
        if conn.queue.is_empty() {
            conn.done = true;
            conn.ep.close(now);
            return;
        }
        let size = conn.queue.remove(0);
        conn.current = Some((size, 0, now));
        conn.ep.send(now, encode_request(size));
    }

    fn service_conn(&mut self, ctx: &mut Ctx<'_>, i: usize) {
        let now = ctx.now();
        let mut finished_obj = false;
        {
            let conn = &mut self.conns[i];
            for ev in conn.ep.events_mut().drain(..) {
                if ev == TcpEvent::Connected {
                    conn.connected = true;
                }
            }
            for chunk in conn.ep.delivered_mut().drain(..) {
                self.stats.bytes_received += chunk.len() as u64;
                if let Some((size, got, t0)) = conn.current.as_mut() {
                    *got += chunk.len() as u64;
                    if *got >= *size {
                        self.stats.object_latencies_s.push(now.since(*t0).as_secs_f64());
                        self.stats.objects_done += 1;
                        conn.current = None;
                        finished_obj = true;
                    }
                }
            }
        }
        if self.conns[i].connected {
            self.request_next(ctx, i);
        }
        let _ = finished_obj;
        self.drive_conn(ctx, i);
        // Page complete?
        if self.page_open && self.conns.iter().all(|c| c.done) {
            self.page_open = false;
            self.stats.pages_done += 1;
            self.page_idx += 1;
            if let Some(next) = self.script.get(self.page_idx) {
                ctx.set_timer(next.think, THINK_TIMER);
            }
        }
    }

    fn drive_conn(&mut self, ctx: &mut Ctx<'_>, i: usize) {
        let token = CONN_TOKEN_BASE + i as TimerToken;
        drive_endpoint(ctx, CLIENT_RADIO, &mut self.conns[i].ep, token);
    }
}

impl App for WebClientApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(first) = self.script.first() {
            ctx.set_timer(first.think, THINK_TIMER);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if pkt.proto != Proto::Tcp {
            return;
        }
        let Some(i) =
            self.conns.iter().position(|c| c.ep.local() == pkt.dst && c.ep.remote() == pkt.src)
        else {
            return;
        };
        let now = ctx.now();
        self.conns[i].ep.on_packet(now, &pkt);
        self.service_conn(ctx, i);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if token == THINK_TIMER {
            self.start_page(ctx);
        } else if token >= CONN_TOKEN_BASE {
            let i = (token - CONN_TOKEN_BASE) as usize;
            if i < self.conns.len() {
                let now = ctx.now();
                self.conns[i].ep.on_tick(now);
                self.service_conn(ctx, i);
            }
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerburst_sim::derive_rng;

    #[test]
    fn script_is_deterministic_per_seed() {
        let cfg = WebScriptConfig::default();
        let a = generate_script(&cfg, &mut derive_rng(1, 2));
        let b = generate_script(&cfg, &mut derive_rng(1, 2));
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.objects, pb.objects);
            assert_eq!(pa.think, pb.think);
            assert_eq!(pa.parallelism, pb.parallelism);
        }
    }

    #[test]
    fn script_respects_bounds() {
        let cfg = WebScriptConfig::default();
        let s = generate_script(&cfg, &mut derive_rng(3, 4));
        assert_eq!(s.len(), cfg.pages);
        for p in &s {
            assert!(p.objects.len() >= cfg.objects_per_page.0);
            assert!(p.objects.len() <= cfg.objects_per_page.1);
            for &o in &p.objects {
                assert!(o >= cfg.object_bytes.0 && o <= cfg.object_bytes.1);
            }
            assert!(p.parallelism >= 1 && p.parallelism <= cfg.max_parallel);
            let t = p.think.as_secs_f64();
            assert!(t >= cfg.think_s.0 && t <= cfg.think_s.1);
        }
    }

    #[test]
    fn request_encoding() {
        let b = encode_request(123_456);
        assert_eq!(u64::from_be_bytes(b[..].try_into().unwrap()), 123_456);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = WebScriptConfig::default();
        let a = generate_script(&cfg, &mut derive_rng(1, 2));
        let b = generate_script(&cfg, &mut derive_rng(9, 2));
        let same = a.iter().zip(&b).all(|(x, y)| x.objects == y.objects && x.think == y.think);
        assert!(!same);
    }
}
