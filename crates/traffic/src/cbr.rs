//! Constant-bit-rate UDP source and a counting sink.
//!
//! Not a paper workload per se, but the tool the proxy's bandwidth
//! microbenchmark (§3.2.2, M1) and many tests use: a perfectly regular
//! packet train whose airtime per size can be measured cleanly.

use std::any::Any;

use bytes::Bytes;
use powerburst_sim::{SimDuration, SimTime};

use powerburst_net::{Ctx, IfaceId, Node, Packet, Proto, SockAddr, TimerToken};
use powerburst_transport::{StreamPayload, STREAM_HEADER};

use crate::app::App;

/// CBR source configuration.
#[derive(Debug, Clone, Copy)]
pub struct CbrSpec {
    /// Destination endpoint.
    pub dst: SockAddr,
    /// Payload bytes per packet (including the 16-byte stream header).
    pub packet_bytes: usize,
    /// Packet interval.
    pub interval: SimDuration,
    /// First packet time.
    pub start: SimTime,
    /// Stop after this instant.
    pub stop: SimTime,
    /// Flow id stamped on packets.
    pub flow: u64,
}

/// A constant-bit-rate UDP source node.
pub struct CbrSource {
    addr: SockAddr,
    spec: CbrSpec,
    seq: u64,
    /// Packets emitted.
    pub sent: u64,
}

impl CbrSource {
    /// New source at `addr`.
    pub fn new(addr: SockAddr, spec: CbrSpec) -> CbrSource {
        assert!(spec.packet_bytes >= STREAM_HEADER, "packet too small for header");
        CbrSource { addr, spec, seq: 0, sent: 0 }
    }
}

impl Node for CbrSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.spec.start.since(SimTime::ZERO), 0);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _iface: IfaceId, _pkt: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: TimerToken) {
        if ctx.now() >= self.spec.stop {
            return;
        }
        let body = self.spec.packet_bytes - STREAM_HEADER;
        let payload = StreamPayload { flow: self.spec.flow, seq: self.seq }.encode(body);
        self.seq += 1;
        self.sent += 1;
        ctx.send_assigning(IfaceId(0), Packet::udp(0, self.addr, self.spec.dst, payload));
        ctx.set_timer(self.spec.interval, 0);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A sink app that counts per-flow packets and bytes.
#[derive(Default)]
pub struct CountingSink {
    /// Packets received.
    pub packets: u64,
    /// Payload bytes received.
    pub bytes: u64,
    /// Highest sequence + 1 per the stream header.
    pub highest_plus_one: u64,
}

impl CountingSink {
    /// Fresh sink.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Packets the source sent that never arrived, assuming in-order ids.
    pub fn lost(&self) -> u64 {
        self.highest_plus_one.saturating_sub(self.packets)
    }
}

impl App for CountingSink {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: Packet) {
        if pkt.proto != Proto::Udp {
            return;
        }
        if let Some(sp) = StreamPayload::decode(&pkt.payload) {
            self.packets += 1;
            self.bytes += pkt.payload.len() as u64;
            self.highest_plus_one = self.highest_plus_one.max(sp.seq + 1);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Convenience: a freshly allocated payload of exactly `total` bytes
/// (header included), filled with the `0x5A` CBR pattern.
pub fn filler(total: usize) -> Bytes {
    powerburst_net::pattern_bytes(0x5A, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_counts_losses() {
        let mut s = CountingSink::new();
        for seq in [0u64, 1, 3, 4] {
            s.packets += 1;
            s.highest_plus_one = s.highest_plus_one.max(seq + 1);
        }
        assert_eq!(s.lost(), 1);
    }

    #[test]
    #[should_panic(expected = "packet too small")]
    fn tiny_packets_rejected() {
        let spec = CbrSpec {
            dst: SockAddr::new(powerburst_net::HostAddr(1), 1),
            packet_bytes: 4,
            interval: SimDuration::from_ms(10),
            start: SimTime::ZERO,
            stop: SimTime::from_secs(1),
            flow: 0,
        };
        CbrSource::new(SockAddr::new(powerburst_net::HostAddr(2), 2), spec);
    }
}
