//! FTP-style bulk download: one TCP connection, one large object.
//!
//! Used for the mixed video/TCP experiments (§4.2, "the rest download TCP
//! data (either HTTP or ftp)") and for the drop-impact validation (§4.3),
//! where the paper measures the transmission-time increase when a sleeping
//! client really drops packets. The client records start/finish times so
//! harnesses can compare transfer durations across configurations.

use std::any::Any;

use powerburst_sim::SimTime;

use powerburst_net::{Ctx, Packet, Proto, SockAddr, TimerToken};
use powerburst_transport::{TcpConfig, TcpEndpoint, TcpEvent};

use crate::app::{drive_endpoint, App, APP_TOKEN, CLIENT_RADIO};
use crate::web::encode_request;

const FTP_TIMER: TimerToken = APP_TOKEN | 0x2000;

/// Bulk-download client app; pair it with a [`crate::web::ByteServer`].
pub struct FtpClientApp {
    local: SockAddr,
    server: SockAddr,
    tcp: TcpConfig,
    /// Bytes to request.
    pub size: u64,
    ep: Option<TcpEndpoint>,
    requested: bool,
    /// When the transfer was requested.
    pub started_at: Option<SimTime>,
    /// When the last byte arrived.
    pub finished_at: Option<SimTime>,
    /// Bytes received so far.
    pub received: u64,
}

impl FtpClientApp {
    /// New bulk client that will fetch `size` bytes from `server`.
    pub fn new(local: SockAddr, server: SockAddr, tcp: TcpConfig, size: u64) -> FtpClientApp {
        FtpClientApp {
            local,
            server,
            tcp,
            size,
            ep: None,
            requested: false,
            started_at: None,
            finished_at: None,
            received: 0,
        }
    }

    /// Transfer duration, if complete.
    pub fn transfer_time(&self) -> Option<powerburst_sim::SimDuration> {
        match (self.started_at, self.finished_at) {
            (Some(a), Some(b)) => Some(b.since(a)),
            _ => None,
        }
    }

    /// True once all requested bytes arrived.
    pub fn done(&self) -> bool {
        self.finished_at.is_some()
    }

    fn service(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let Some(ep) = self.ep.as_mut() else { return };
        for ev in ep.take_events() {
            if ev == TcpEvent::Connected && !self.requested {
                self.requested = true;
                self.started_at = Some(now);
                ep.send(now, encode_request(self.size));
            }
        }
        for chunk in ep.take_delivered() {
            self.received += chunk.len() as u64;
        }
        if self.received >= self.size && self.finished_at.is_none() {
            self.finished_at = Some(now);
            ep.close(now);
        }
        drive_endpoint(ctx, CLIENT_RADIO, ep, FTP_TIMER);
    }
}

impl App for FtpClientApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let mut ep = TcpEndpoint::active(self.local, self.server, self.tcp);
        ep.connect(ctx.now());
        self.ep = Some(ep);
        self.service(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if pkt.proto != Proto::Tcp || pkt.dst != self.local {
            return;
        }
        let now = ctx.now();
        if let Some(ep) = self.ep.as_mut() {
            ep.on_packet(now, &pkt);
        }
        self.service(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if token != FTP_TIMER {
            return;
        }
        let now = ctx.now();
        if let Some(ep) = self.ep.as_mut() {
            ep.on_tick(now);
        }
        self.service(ctx);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerburst_net::HostAddr;

    #[test]
    fn transfer_time_requires_both_ends() {
        let app = FtpClientApp::new(
            SockAddr::new(HostAddr(1), 9),
            SockAddr::new(HostAddr(2), 20),
            TcpConfig::default(),
            1_000,
        );
        assert!(app.transfer_time().is_none());
        assert!(!app.done());
    }
}
