//! # powerburst-traffic
//!
//! Workloads matching the paper's evaluation (§4.1–4.2):
//!
//! * [`video`] — a RealServer-style VBR streaming source (nominal 56/128/
//!   256/512 kbps → effective 34/80/225/450 kbps, GOP-bursty) with
//!   loss-driven fidelity adaptation, plus the client player that sends
//!   receiver reports;
//! * [`web`] — a request/response byte server and a seeded, scripted
//!   multi-connection browser;
//! * [`ftp`] — single-connection bulk download with transfer timing;
//! * [`cbr`] — constant-bit-rate source and counting sink (calibration);
//! * [`app`] — the [`App`] trait client nodes host, the `drive_endpoint`
//!   helper, and the naive (always-on) client baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod cbr;
pub mod ftp;
pub mod video;
pub mod web;

pub use app::{drive_endpoint, App, NaiveClient, APP_TOKEN, CLIENT_RADIO};
pub use cbr::{CbrSource, CbrSpec, CountingSink};
pub use ftp::FtpClientApp;
pub use video::{AdaptConfig, Fidelity, PlayerStats, StreamSpec, VideoClientApp, VideoServer};
pub use web::{generate_script, BrowserStats, ByteServer, Page, WebClientApp, WebScriptConfig};
