//! Streaming-video workload: a RealServer-style VBR source and the matching
//! client player.
//!
//! The paper streams a 1:59 trailer encoded at nominal 56/128/256/512 kbps,
//! whose *effective* bitrates are 34/80/225/450 kbps (§4.1). We generate a
//! seeded VBR packet schedule with GOP-scale burstiness (large I-frames on a
//! 12-frame cadence), slow scene-level modulation, and per-frame noise,
//! targeting the effective bitrate.
//!
//! RealServer's behaviour under loss matters to Figure 4's 512 kbps
//! anomaly: "This causes RealServer to believe that the connection is lossy,
//! and the stream is adapted to a lower-quality, lower-bandwidth one"
//! (§4.3). The client player therefore sends 1 Hz receiver reports, and the
//! server downshifts the fidelity ladder when reported loss stays high.

use std::any::Any;

use powerburst_sim::{SimDuration, SimTime};
use rand::Rng;

use powerburst_net::{ports, Ctx, IfaceId, Node, Packet, Proto, SockAddr, TimerToken};
use powerburst_transport::{StreamPayload, STREAM_HEADER};

use crate::app::{App, APP_TOKEN, CLIENT_RADIO};

/// The paper's fidelity ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fidelity {
    /// Nominal 56 kbps (effective 34 kbps).
    K56,
    /// Nominal 128 kbps (effective 80 kbps).
    K128,
    /// Nominal 256 kbps (effective 225 kbps).
    K256,
    /// Nominal 512 kbps (effective 450 kbps).
    K512,
}

impl Fidelity {
    /// All fidelities, lowest first.
    pub const LADDER: [Fidelity; 4] =
        [Fidelity::K56, Fidelity::K128, Fidelity::K256, Fidelity::K512];

    /// Nominal encoding rate, kbps (what the user requested).
    pub fn nominal_kbps(self) -> u32 {
        match self {
            Fidelity::K56 => 56,
            Fidelity::K128 => 128,
            Fidelity::K256 => 256,
            Fidelity::K512 => 512,
        }
    }

    /// Effective delivered rate, bits/s (§4.1: "the effective bitrates of
    /// these streams are 34kbps, 80kbps, 225kbps, and 450kbps").
    pub fn effective_bps(self) -> f64 {
        match self {
            Fidelity::K56 => 34_000.0,
            Fidelity::K128 => 80_000.0,
            Fidelity::K256 => 225_000.0,
            Fidelity::K512 => 450_000.0,
        }
    }

    /// Frame rate used by the generator.
    pub fn fps(self) -> u32 {
        match self {
            Fidelity::K56 => 8,
            Fidelity::K128 => 10,
            Fidelity::K256 => 12,
            Fidelity::K512 => 15,
        }
    }

    /// One step down the ladder, if any.
    pub fn lower(self) -> Option<Fidelity> {
        match self {
            Fidelity::K56 => None,
            Fidelity::K128 => Some(Fidelity::K56),
            Fidelity::K256 => Some(Fidelity::K128),
            Fidelity::K512 => Some(Fidelity::K256),
        }
    }

    /// Short label for tables ("56K"…).
    pub fn label(self) -> &'static str {
        match self {
            Fidelity::K56 => "56K",
            Fidelity::K128 => "128K",
            Fidelity::K256 => "256K",
            Fidelity::K512 => "512K",
        }
    }
}

/// One provisioned stream on the video server.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Destination client endpoint.
    pub client: SockAddr,
    /// Requested fidelity.
    pub fidelity: Fidelity,
    /// When the stream starts (the paper staggers requests ~1 s apart).
    pub start: SimTime,
    /// Stream duration (the trailer is 1:59).
    pub duration: SimDuration,
    /// Flow id carried in every packet.
    pub flow: u64,
}

/// VBR frame-size generator.
#[derive(Debug, Clone)]
struct VbrShape {
    gop_len: u32,
    i_frame_scale: f64,
    scene_period_s: f64,
    scene_depth: f64,
    scene_phase: f64,
    noise: f64,
}

impl VbrShape {
    fn new<R: Rng + ?Sized>(rng: &mut R) -> VbrShape {
        VbrShape {
            gop_len: 12,
            i_frame_scale: 2.8,
            scene_period_s: rng.random_range(12.0..25.0),
            scene_depth: 0.25,
            scene_phase: rng.random_range(0.0..std::f64::consts::TAU),
            noise: 0.10,
        }
    }

    /// Frame size in bytes for frame `n` of a stream with the given mean
    /// bytes-per-frame.
    fn frame_bytes<R: Rng + ?Sized>(&self, rng: &mut R, n: u64, t_s: f64, mean: f64) -> usize {
        // GOP pattern normalized to mean 1.
        let p_scale = (self.gop_len as f64 - self.i_frame_scale) / (self.gop_len as f64 - 1.0);
        let gop = if n.is_multiple_of(self.gop_len as u64) { self.i_frame_scale } else { p_scale };
        let scene = 1.0
            + self.scene_depth
                * (std::f64::consts::TAU * t_s / self.scene_period_s + self.scene_phase).sin();
        let noise = 1.0 + self.noise * (rng.random::<f64>() * 2.0 - 1.0);
        (mean * gop * scene * noise).round().max(64.0) as usize
    }
}

/// Runtime state of one stream.
struct StreamState {
    spec: StreamSpec,
    current: Fidelity,
    shape: VbrShape,
    frame: u64,
    seq: u64,
    bytes_sent: u64,
    /// Consecutive lossy receiver reports.
    lossy_reports: u32,
    downshifts: u32,
    done: bool,
}

/// Receiver-report wire codec. Lives in `powerburst_net::feedback` since
/// PR 7 so the proxy can snoop reports without depending on this crate;
/// re-exported here for existing call sites.
pub use powerburst_net::feedback::{decode_report, encode_report, ReceiverReport, REPORT_LEN};

/// Maximum UDP payload per stream packet (media packets are mid-sized).
pub const MAX_STREAM_PAYLOAD: usize = 700;

/// Configuration for the server's loss-adaptation logic.
#[derive(Debug, Clone, Copy)]
pub struct AdaptConfig {
    /// Enable downshifting (RealServer behaviour).
    pub enabled: bool,
    /// A report with loss above this fraction counts as "lossy".
    pub loss_threshold: f64,
    /// Downshift after this many consecutive lossy reports.
    pub lossy_reports_to_downshift: u32,
    /// Maximum downshifts per stream (RealServer switches to *a* lower
    /// encoding, not down a whole cascade).
    pub max_downshifts: u32,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            enabled: true,
            loss_threshold: 0.10,
            lossy_reports_to_downshift: 3,
            max_downshifts: 1,
        }
    }
}

/// The streaming server node.
pub struct VideoServer {
    addr: SockAddr,
    adapt: AdaptConfig,
    streams: Vec<StreamState>,
    /// Per-stream last-report bookkeeping: (highest_seq, received) at the
    /// previous report, to compute per-interval loss.
    last_report: Vec<(u64, u64)>,
}

impl VideoServer {
    /// Build a server at `addr` serving `streams`.
    pub fn new<R: Rng + ?Sized>(
        addr: SockAddr,
        streams: Vec<StreamSpec>,
        adapt: AdaptConfig,
        rng: &mut R,
    ) -> VideoServer {
        let n = streams.len();
        VideoServer {
            addr,
            adapt,
            streams: streams
                .into_iter()
                .map(|spec| StreamState {
                    current: spec.fidelity,
                    shape: VbrShape::new(rng),
                    frame: 0,
                    seq: 0,
                    bytes_sent: 0,
                    lossy_reports: 0,
                    downshifts: 0,
                    done: false,
                    spec,
                })
                .collect(),
            last_report: vec![(0, 0); n],
        }
    }

    /// Bytes sent so far on stream `i`.
    pub fn bytes_sent(&self, i: usize) -> u64 {
        self.streams[i].bytes_sent
    }

    /// Current fidelity of stream `i` (may be below the request after
    /// adaptation).
    pub fn current_fidelity(&self, i: usize) -> Fidelity {
        self.streams[i].current
    }

    /// Number of downshifts stream `i` suffered.
    pub fn downshifts(&self, i: usize) -> u32 {
        self.streams[i].downshifts
    }

    fn frame_interval(f: Fidelity) -> SimDuration {
        SimDuration::from_us(1_000_000 / f.fps() as u64)
    }

    fn emit_frame(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let now = ctx.now();
        let st = &mut self.streams[idx];
        if st.done {
            return;
        }
        let elapsed = now.since(st.spec.start);
        if elapsed >= st.spec.duration {
            st.done = true;
            return;
        }
        let fid = st.current;
        let mean_frame = fid.effective_bps() / 8.0 / fid.fps() as f64;
        let t_s = elapsed.as_secs_f64();
        let frame_no = st.frame;
        st.frame += 1;
        let total = st.shape.frame_bytes(ctx.rng(), frame_no, t_s, mean_frame);
        // Packetize the frame.
        let mut remaining = total;
        let flow = st.spec.flow;
        let client = st.spec.client;
        while remaining > 0 {
            let body = remaining.min(MAX_STREAM_PAYLOAD - STREAM_HEADER);
            let seq = self.streams[idx].seq;
            self.streams[idx].seq += 1;
            let payload = StreamPayload { flow, seq }.encode(body);
            self.streams[idx].bytes_sent += payload.len() as u64;
            let pkt = Packet::udp(0, self.addr, client, payload);
            ctx.send_assigning(IfaceId(0), pkt);
            remaining -= body;
            if body == 0 {
                break;
            }
        }
        // Schedule the next frame.
        ctx.set_timer_untracked(Self::frame_interval(fid), idx as TimerToken);
    }

    fn on_report(&mut self, flow: u64, highest: u64, received: u64) {
        let Some(idx) = self.streams.iter().position(|s| s.spec.flow == flow) else {
            return;
        };
        let (prev_high, prev_recv) = self.last_report[idx];
        self.last_report[idx] = (highest, received);
        let expected = highest.saturating_sub(prev_high);
        let got = received.saturating_sub(prev_recv);
        if expected == 0 {
            return;
        }
        let loss = 1.0 - (got as f64 / expected as f64).min(1.0);
        let st = &mut self.streams[idx];
        if !self.adapt.enabled {
            return;
        }
        if loss > self.adapt.loss_threshold {
            st.lossy_reports += 1;
            if st.lossy_reports >= self.adapt.lossy_reports_to_downshift {
                if st.downshifts < self.adapt.max_downshifts {
                    if let Some(lower) = st.current.lower() {
                        st.current = lower;
                        st.downshifts += 1;
                    }
                }
                st.lossy_reports = 0;
            }
        } else {
            st.lossy_reports = 0;
        }
    }
}

impl Node for VideoServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, st) in self.streams.iter().enumerate() {
            ctx.set_timer_untracked(st.spec.start.since(SimTime::ZERO), i as TimerToken);
        }
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _iface: IfaceId, pkt: Packet) {
        if pkt.proto == Proto::Udp && pkt.dst.port == ports::FEEDBACK {
            if let Some((flow, high, recv)) = decode_report(&pkt.payload) {
                self.on_report(flow, high, recv);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        let idx = token as usize;
        if idx < self.streams.len() {
            self.emit_frame(ctx, idx);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Per-flow receive accounting on the player.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlayerStats {
    /// Packets received.
    pub received: u64,
    /// Highest sequence number seen (+1), i.e. packets the server sent
    /// that we know about.
    pub highest_plus_one: u64,
    /// Payload bytes received.
    pub bytes: u64,
}

impl PlayerStats {
    /// Fraction of known-sent packets that never arrived.
    pub fn loss_fraction(&self) -> f64 {
        if self.highest_plus_one == 0 {
            return 0.0;
        }
        1.0 - self.received as f64 / self.highest_plus_one as f64
    }
}

/// The client-side player app: counts stream packets, sends 1 Hz receiver
/// reports back to the server (RealOne → RealServer feedback channel).
pub struct VideoClientApp {
    me: SockAddr,
    server: SockAddr,
    flow: u64,
    /// Receiver-report interval.
    report_every: SimDuration,
    stats: PlayerStats,
    /// Playout drain rate in bits/sec; `Some` switches the app to the
    /// 32-byte buffer-extended report format (see
    /// `powerburst_net::feedback`). `None` keeps the legacy 24-byte
    /// reports — and therefore byte-identical golden traces.
    drain_bps: Option<u64>,
    /// Modelled playout-buffer occupancy, bytes.
    buffer_bytes: u64,
    /// When the buffer was last drained (µs of sim time).
    last_drain_us: u64,
}

const REPORT_TIMER: TimerToken = APP_TOKEN | 1;

impl VideoClientApp {
    /// New player for `flow`, reporting to `server`.
    pub fn new(me: SockAddr, server: SockAddr, flow: u64) -> VideoClientApp {
        VideoClientApp {
            me,
            server,
            flow,
            report_every: SimDuration::from_secs(1),
            stats: PlayerStats::default(),
            drain_bps: None,
            buffer_bytes: 0,
            last_drain_us: 0,
        }
    }

    /// Enable buffer-occupancy reporting: model a playout buffer draining
    /// at `drain_bps` (the stream's nominal encoding rate) and switch
    /// receiver reports to the 32-byte buffer-extended layout.
    pub fn with_buffer_reports(mut self, drain_bps: u64) -> VideoClientApp {
        self.drain_bps = Some(drain_bps.max(1));
        self
    }

    /// Receive accounting so far.
    pub fn stats(&self) -> PlayerStats {
        self.stats
    }

    /// Modelled playout-buffer occupancy, bytes (0 unless buffer
    /// reporting is enabled).
    pub fn buffer_bytes(&self) -> u64 {
        self.buffer_bytes
    }

    /// Drain the modelled playout buffer up to sim time `now_us`.
    fn drain_to(&mut self, now_us: u64) {
        let Some(bps) = self.drain_bps else { return };
        let dt = now_us.saturating_sub(self.last_drain_us);
        self.last_drain_us = now_us;
        // bits consumed = bps * dt_us / 1e6; bytes = /8. Integer math only.
        let consumed = bps.saturating_mul(dt) / 8_000_000;
        self.buffer_bytes = self.buffer_bytes.saturating_sub(consumed);
    }
}

impl App for VideoClientApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Randomize the report phase (as RTCP does) so ten players never
        // transmit receiver reports in the same instant and jam the medium
        // right when the proxy broadcasts its schedule.
        let phase_us = ctx.rng().random_range(200_000..1_200_000);
        ctx.set_timer_untracked(powerburst_sim::SimDuration::from_us(phase_us), REPORT_TIMER);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if pkt.proto != Proto::Udp {
            return;
        }
        let Some(sp) = StreamPayload::decode(&pkt.payload) else { return };
        if sp.flow != self.flow {
            return;
        }
        self.stats.received += 1;
        self.stats.bytes += pkt.payload.len() as u64;
        self.stats.highest_plus_one = self.stats.highest_plus_one.max(sp.seq + 1);
        if self.drain_bps.is_some() {
            self.drain_to(ctx.now().as_us());
            self.buffer_bytes = self.buffer_bytes.saturating_add(pkt.payload.len() as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if token != REPORT_TIMER {
            return;
        }
        self.drain_to(ctx.now().as_us());
        let report = ReceiverReport {
            flow: self.flow,
            highest_seq: self.stats.highest_plus_one,
            received: self.stats.received,
            buffer_bytes: self.drain_bps.map(|_| self.buffer_bytes),
        }
        .encode();
        let dst = SockAddr::new(self.server.host, ports::FEEDBACK);
        let pkt = Packet::udp(0, self.me, dst, report);
        ctx.send_assigning(CLIENT_RADIO, pkt);
        let jitter_us = ctx.rng().random_range(0..100_000);
        ctx.set_timer_untracked(
            self.report_every + powerburst_sim::SimDuration::from_us(jitter_us),
            REPORT_TIMER,
        );
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerburst_sim::derive_rng;

    #[test]
    fn ladder_ordering_and_labels() {
        assert!(Fidelity::K56.effective_bps() < Fidelity::K512.effective_bps());
        assert_eq!(Fidelity::K512.lower(), Some(Fidelity::K256));
        assert_eq!(Fidelity::K56.lower(), None);
        assert_eq!(Fidelity::K256.label(), "256K");
        assert_eq!(Fidelity::K128.nominal_kbps(), 128);
    }

    #[test]
    fn vbr_mean_tracks_target() {
        let mut rng = derive_rng(5, 5);
        let shape = VbrShape::new(&mut rng);
        let mean_target = 1_000.0;
        let n = 20_000u64;
        let total: f64 = (0..n)
            .map(|i| shape.frame_bytes(&mut rng, i, i as f64 / 12.0, mean_target) as f64)
            .sum();
        let mean = total / n as f64;
        assert!(
            (mean - mean_target).abs() / mean_target < 0.05,
            "mean {mean} vs target {mean_target}"
        );
    }

    #[test]
    fn i_frames_are_bigger() {
        let mut rng = derive_rng(6, 6);
        let shape = VbrShape::new(&mut rng);
        let i_frame = shape.frame_bytes(&mut rng, 0, 0.0, 1_000.0);
        let p_frame = shape.frame_bytes(&mut rng, 1, 0.08, 1_000.0);
        assert!(i_frame > 2 * p_frame, "I {i_frame} vs P {p_frame}");
    }

    #[test]
    fn report_round_trip() {
        let b = encode_report(3, 100, 97);
        assert_eq!(decode_report(&b), Some((3, 100, 97)));
        assert_eq!(decode_report(&b[..10]), None);
    }

    #[test]
    fn player_loss_fraction() {
        let mut app = VideoClientApp::new(
            SockAddr::new(powerburst_net::HostAddr(1), 1),
            SockAddr::new(powerburst_net::HostAddr(2), 554),
            7,
        );
        // Simulate 9 of 10 packets arriving (seq 0..10, missing one).
        for seq in [0u64, 1, 2, 3, 4, 6, 7, 8, 9] {
            app.stats.received += 1;
            app.stats.highest_plus_one = app.stats.highest_plus_one.max(seq + 1);
        }
        let l = app.stats().loss_fraction();
        assert!((l - 0.1).abs() < 1e-9, "loss {l}");
    }
}
