//! Client-side application plumbing.
//!
//! A client node hosts two layers: the *power daemon* (schedule handling and
//! WNIC control — `powerburst-client`) and the *application* (video player,
//! web browser, ftp client). [`App`] is the application half; the hosting
//! node forwards packets and app-tagged timers to it. The paper's client
//! modifications are "straightforward and could be implemented with a
//! simple daemon" (§3.2.1) precisely because the application never changes —
//! the same separation holds here.

use std::any::Any;

use powerburst_net::{Ctx, IfaceId, Packet, TimerToken};
use powerburst_transport::TcpEndpoint;

/// Timer tokens with this bit set belong to the application layer; the
/// hosting node routes them to [`App::on_timer`].
pub const APP_TOKEN: TimerToken = 1 << 63;

/// The radio interface number on every client node.
pub const CLIENT_RADIO: IfaceId = IfaceId(0);

/// A client-side application.
///
/// `Send` for the same reason [`powerburst_net::Node`] is: a sharded
/// world may host the owning node's shard on any worker thread.
pub trait App: Any + Send {
    /// Called once at simulation start.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A packet addressed to this client arrived (the hosting node has
    /// already filtered out power-daemon control traffic).
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet);

    /// An application timer (token has [`APP_TOKEN`] set) fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: TimerToken) {}

    /// Downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Drain a TCP endpoint's wire output and (re)arm its retransmission timer
/// under `token`. Call after every interaction with the endpoint.
pub fn drive_endpoint(ctx: &mut Ctx<'_>, iface: IfaceId, ep: &mut TcpEndpoint, token: TimerToken) {
    for pkt in ep.packets_mut().drain(..) {
        ctx.send_assigning(iface, pkt);
    }
    match ep.next_deadline() {
        Some(deadline) => ctx.rearm_timer_at(deadline, token),
        None => {
            ctx.cancel_timer(token);
        }
    }
}

/// A client node that keeps its WNIC in high-power mode for the whole run —
/// the paper's **naive client** baseline — hosting an arbitrary [`App`].
pub struct NaiveClient {
    app: Box<dyn App>,
}

impl NaiveClient {
    /// Wrap an application.
    pub fn new(app: Box<dyn App>) -> NaiveClient {
        NaiveClient { app }
    }

    /// Access the hosted application.
    pub fn app_mut<T: App>(&mut self) -> &mut T {
        self.app.as_any_mut().downcast_mut().expect("app type")
    }
}

impl powerburst_net::Node for NaiveClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Never sleeps: the WNIC stays in whatever (high-power) state the
        // world initialized it to.
        self.app.on_start(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _iface: IfaceId, pkt: Packet) {
        self.app.on_packet(ctx, pkt);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        self.app.on_timer(ctx, token);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
