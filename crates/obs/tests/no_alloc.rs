//! The zero-overhead contract: recording through a disabled recorder must
//! not touch the heap, and the enabled counter/gauge/histogram path (plus
//! the pre-allocated event channel under its cap) must not either.
//!
//! A counting global allocator tracks every allocation in this test
//! binary. The file deliberately contains a single `#[test]` so no
//! concurrently running test can perturb the counter mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use powerburst_obs::{Counter, EventKind, Gauge, Hist, Recorder, RecorderConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn hammer(r: &Recorder) {
    for i in 0..10_000u64 {
        r.incr(Counter::BurstsStarted);
        r.add(Counter::UdpBytesSent, i);
        r.gauge_add(Gauge::BacklogBytes, 1);
        r.gauge_set(Gauge::LastScheduleEntries, 5);
        r.observe(Hist::WakeLeadUs, i);
        r.observe(Hist::QueueDepthBytes, i * 3);
        r.event(i, EventKind::BurstEnd { client: 7, spent_us: i, margin_us: -(i as i64) });
    }
}

#[test]
fn recording_hot_paths_do_not_allocate() {
    // Disabled recorder: the whole instrumented surface must be free.
    let disabled = Recorder::disabled();
    let before = ALLOCS.load(Ordering::SeqCst);
    hammer(&disabled);
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "disabled recorder allocated on the hot path");

    // Enabled recorder: construction allocates (fixed arrays + the event
    // buffer pre-sized to its cap), but recording afterwards must not —
    // including events, as long as the channel stays under the cap.
    let enabled = Recorder::new(RecorderConfig { events: true, event_cap: 100_000, lanes: 1 });
    let before = ALLOCS.load(Ordering::SeqCst);
    hammer(&enabled);
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "enabled recorder allocated on the hot path");

    // Sanity: the work above was actually recorded.
    let rep = enabled.export().expect("enabled recorder exports");
    assert_eq!(rep.counter(Counter::BurstsStarted), 10_000);
    assert_eq!(rep.events.len(), 10_000);
}
