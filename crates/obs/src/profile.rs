//! Wall-clock profiling, quarantined from the deterministic exports.
//!
//! Everything in this module measures *host* time (`std::time::Instant`)
//! and therefore varies run to run. It feeds the `BENCH_*.json` perf
//! reports the CI trajectory tracks — events/sec, per-experiment and
//! per-sweep-job wall time — and must never leak into a metrics or trace
//! export, which are required to be bit-identical across repeats.

use std::time::Instant;

/// A started wall-clock timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    t0: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch { t0: Instant::now() }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_s(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// One profiled sweep job (a single simulation run).
#[derive(Debug, Clone)]
pub struct BenchJob {
    /// Job label (e.g. the experiment row it produced).
    pub label: String,
    /// Wall time, seconds.
    pub wall_s: f64,
    /// Simulation events dispatched during the run (0 if unknown).
    pub sim_events: u64,
    /// Mean client energy saved, percent — only recorded by stages whose
    /// point is an energy comparison (the per-policy rows); omitted from
    /// the JSON otherwise. Unlike wall time this *is* deterministic.
    pub saved_pct: Option<f64>,
}

impl BenchJob {
    /// A plain timing job (no energy figure).
    pub fn new(label: String, wall_s: f64, sim_events: u64) -> BenchJob {
        BenchJob { label, wall_s, sim_events, saved_pct: None }
    }
}

/// One profiled stage (an experiment, a sweep, or a pipeline step).
#[derive(Debug, Clone)]
pub struct BenchStage {
    /// Stage name.
    pub name: String,
    /// Wall time for the whole stage, seconds.
    pub wall_s: f64,
    /// Worker threads the stage ran with (1 for inline stages).
    pub threads: usize,
    /// Total simulation events dispatched across the stage's runs.
    pub sim_events: u64,
    /// Per-job profiles, in input order.
    pub jobs: Vec<BenchJob>,
}

impl BenchStage {
    /// Simulation events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.sim_events as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// A whole perf report (`BENCH_pr5.json`).
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Report label.
    pub name: String,
    /// Profiled stages, in execution order.
    pub stages: Vec<BenchStage>,
}

impl BenchReport {
    /// A new, empty report.
    pub fn new(name: &str) -> Self {
        BenchReport { name: name.to_string(), stages: Vec::new() }
    }

    /// Total wall time across stages, seconds.
    pub fn total_wall_s(&self) -> f64 {
        self.stages.iter().map(|s| s.wall_s).sum()
    }

    /// Total simulation events across stages.
    pub fn total_events(&self) -> u64 {
        self.stages.iter().map(|s| s.sim_events).sum()
    }

    /// Render as JSON. Floats use fixed 6-decimal formatting; this report
    /// is wall-clock data and is *not* expected to be deterministic.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str(&format!(
            "{{\"report\":\"{}\",\"total_wall_s\":{:.6},\"total_sim_events\":{},\"stages\":[",
            self.name,
            self.total_wall_s(),
            self.total_events()
        ));
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"wall_s\":{:.6},\"threads\":{},\"sim_events\":{},\
                 \"events_per_sec\":{:.1},\"jobs\":[",
                st.name,
                st.wall_s,
                st.threads,
                st.sim_events,
                st.events_per_sec()
            ));
            for (j, job) in st.jobs.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"label\":\"{}\",\"wall_s\":{:.6},\"sim_events\":{}",
                    job.label, job.wall_s, job.sim_events
                ));
                if let Some(p) = job.saved_pct {
                    s.push_str(&format!(",\"saved_pct\":{p:.2}"));
                }
                s.push('}');
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// Fold another measurement of the same suite into this report,
    /// keeping whichever run of each stage was faster (stage-wise minimum
    /// wall time — the least-noise estimator on a shared runner). Stages
    /// present only in `other` are appended. The simulator is
    /// deterministic, so repeats of one stage must agree on `sim_events`;
    /// a mismatch means the reports are from different suites and that
    /// stage is left untouched.
    pub fn keep_best(&mut self, other: BenchReport) {
        for st in other.stages {
            match self.stages.iter_mut().find(|s| s.name == st.name) {
                Some(mine) if mine.sim_events == st.sim_events => {
                    if st.wall_s < mine.wall_s {
                        *mine = st;
                    }
                }
                Some(_) => {}
                None => self.stages.push(st),
            }
        }
    }
}

/// One stage's figures as scanned back out of a rendered report:
/// throughput for comparisons, wall time for judging whether the
/// throughput figure is trustworthy at all.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRate {
    /// Stage name.
    pub name: String,
    /// Stage wall time, seconds.
    pub wall_s: f64,
    /// Stage throughput, simulated events per wall second.
    pub rate: f64,
}

/// Stages completing faster than this measure scheduler jitter and timer
/// granularity more than throughput: a sub-5 ms stage routinely swings
/// ±30% run to run on a shared CI runner. [`regressions`] refuses to gate
/// on a stage whose *baseline or current* wall time is below this floor
/// (the comparison still shows up in [`delta_lines`], just can't fail the
/// build).
pub const MIN_GATE_WALL_S: f64 = 0.05;

/// Stages of `current` that regressed more than `threshold_pct` percent
/// below `baseline` (both from [`parse_stage_rates`]), one formatted line
/// per offender. Empty when everything is within the threshold — the
/// gating form of [`delta_lines`]. Stages too short to time reliably
/// (either side under [`MIN_GATE_WALL_S`]) never gate.
pub fn regressions(
    current: &[StageRate],
    baseline: &[StageRate],
    threshold_pct: f64,
) -> Vec<String> {
    current
        .iter()
        .filter_map(|st| {
            let base = baseline.iter().find(|b| b.name == st.name)?;
            if base.rate <= 0.0 || st.wall_s < MIN_GATE_WALL_S || base.wall_s < MIN_GATE_WALL_S {
                return None;
            }
            let pct = (st.rate - base.rate) / base.rate * 100.0;
            if pct < -threshold_pct {
                Some(format!(
                    "{:<18} {:>12.0} events/s  vs baseline {:>12.0}  \
                     ({pct:+.1}% < -{threshold_pct:.1}%)",
                    st.name, st.rate, base.rate
                ))
            } else {
                None
            }
        })
        .collect()
}

/// Extract each stage's name, wall time, and events/sec from a rendered
/// [`BenchReport::to_json`] string.
///
/// A deliberately tiny scanner rather than a JSON dependency: stage
/// objects are the only places the report writes a `"name"` key (jobs use
/// `"label"`), and each stage's `"wall_s"` and `"events_per_sec"` follow
/// its `"name"` in emission order. Returns an empty vec for input that
/// doesn't look like a bench report.
pub fn parse_stage_rates(json: &str) -> Vec<StageRate> {
    fn number(rest: &mut &str, key: &str) -> Option<f64> {
        let p = rest.find(key)?;
        *rest = &rest[p + key.len()..];
        let num_end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(rest.len());
        let v = rest[..num_end].parse::<f64>().ok();
        *rest = &rest[num_end..];
        v
    }
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(p) = rest.find("\"name\":\"") {
        rest = &rest[p + 8..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        rest = &rest[end..];
        let Some(wall_s) = number(&mut rest, "\"wall_s\":") else { break };
        let Some(rate) = number(&mut rest, "\"events_per_sec\":") else { break };
        out.push(StageRate { name, wall_s, rate });
    }
    out
}

/// Render a report-only comparison of `current` against `baseline`
/// events/sec figures (both from [`parse_stage_rates`]), one line per
/// stage present in `current`.
pub fn delta_lines(current: &[StageRate], baseline: &[StageRate]) -> Vec<String> {
    current
        .iter()
        .map(|st| match baseline.iter().find(|b| b.name == st.name) {
            Some(base) if base.rate > 0.0 => {
                let pct = (st.rate - base.rate) / base.rate * 100.0;
                let noise = if st.wall_s < MIN_GATE_WALL_S || base.wall_s < MIN_GATE_WALL_S {
                    "  [sub-floor wall time; not gated]"
                } else {
                    ""
                };
                format!(
                    "{:<18} {:>12.0} events/s  vs baseline {:>12.0}  ({pct:+.1}%){noise}",
                    st.name, st.rate, base.rate
                )
            }
            _ => format!("{:<18} {:>12.0} events/s  (no baseline stage)", st.name, st.rate),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed_s() >= 0.0);
    }

    #[test]
    fn report_totals_and_json() {
        let mut r = BenchReport::new("pr3");
        r.stages.push(BenchStage {
            name: "fig4".into(),
            wall_s: 2.0,
            threads: 4,
            sim_events: 1_000,
            jobs: vec![BenchJob::new("i100".into(), 0.5, 250)],
        });
        r.stages.push(BenchStage {
            name: "instrumented".into(),
            wall_s: 1.0,
            threads: 1,
            sim_events: 500,
            jobs: Vec::new(),
        });
        assert!((r.total_wall_s() - 3.0).abs() < 1e-9);
        assert_eq!(r.total_events(), 1_500);
        let j = r.to_json();
        assert!(j.starts_with("{\"report\":\"pr3\""));
        assert!(j.contains("\"events_per_sec\":500.0"));
        assert!(j.contains("\"label\":\"i100\""));
        assert!(j.ends_with("]}"));
    }

    #[test]
    fn stage_rates_round_trip_through_json() {
        let mut r = BenchReport::new("pr5");
        for (name, events) in [("video", 4_000u64), ("web", 2_000)] {
            r.stages.push(BenchStage {
                name: name.into(),
                wall_s: 2.0,
                threads: 1,
                sim_events: events,
                jobs: vec![BenchJob::new("job".into(), 2.0, events)],
            });
        }
        let rates = parse_stage_rates(&r.to_json());
        assert_eq!(rates.len(), 2, "one rate per stage, job labels ignored");
        assert_eq!(rates[0].name, "video");
        assert!((rates[0].wall_s - 2.0).abs() < 1e-6);
        assert!((rates[0].rate - 2_000.0).abs() < 1e-6);
        assert_eq!(rates[1].name, "web");
        assert!((rates[1].rate - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn saved_pct_is_emitted_only_when_present() {
        let mut r = BenchReport::new("pr7");
        r.stages.push(BenchStage {
            name: "policy".into(),
            wall_s: 1.0,
            threads: 1,
            sim_events: 100,
            jobs: vec![
                BenchJob::new("plain".into(), 0.5, 50),
                BenchJob { saved_pct: Some(61.25), ..BenchJob::new("energy".into(), 0.5, 50) },
            ],
        });
        let j = r.to_json();
        assert!(
            j.contains(
                "\"label\":\"energy\",\"wall_s\":0.500000,\"sim_events\":50,\"saved_pct\":61.25}"
            ),
            "json: {j}"
        );
        assert!(
            j.contains("\"label\":\"plain\",\"wall_s\":0.500000,\"sim_events\":50}"),
            "json: {j}"
        );
        // The stage-rate scanner ignores the new key.
        let rates = parse_stage_rates(&j);
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].name, "policy");
    }

    #[test]
    fn parse_stage_rates_tolerates_garbage() {
        assert!(parse_stage_rates("").is_empty());
        assert!(parse_stage_rates("not json at all").is_empty());
        assert!(parse_stage_rates("{\"name\":\"x\"").is_empty());
    }

    fn rate(name: &str, wall_s: f64, rate: f64) -> StageRate {
        StageRate { name: name.into(), wall_s, rate }
    }

    #[test]
    fn delta_lines_report_relative_change() {
        let cur = vec![rate("video", 2.0, 1_500.0), rate("new", 2.0, 10.0)];
        let base = vec![rate("video", 2.0, 1_000.0)];
        let lines = delta_lines(&cur, &base);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("+50.0%"), "line: {}", lines[0]);
        assert!(!lines[0].contains("not gated"), "line: {}", lines[0]);
        assert!(lines[1].contains("no baseline stage"), "line: {}", lines[1]);
    }

    #[test]
    fn delta_lines_flag_sub_floor_stages() {
        let cur = vec![rate("smoke", 0.004, 900.0)];
        let base = vec![rate("smoke", 0.004, 1_000.0)];
        let lines = delta_lines(&cur, &base);
        assert!(lines[0].contains("[sub-floor wall time; not gated]"), "line: {}", lines[0]);
    }

    #[test]
    fn regressions_gate_only_past_threshold() {
        let base = vec![rate("video", 2.0, 1_000.0), rate("web", 2.0, 1_000.0)];
        // -4% survives a 5% threshold, -20% does not; unknown stages pass.
        let cur = vec![rate("video", 2.0, 960.0), rate("web", 2.0, 800.0), rate("new", 2.0, 1.0)];
        let offenders = regressions(&cur, &base, 5.0);
        assert_eq!(offenders.len(), 1, "offenders: {offenders:?}");
        assert!(offenders[0].contains("web"), "line: {}", offenders[0]);
        assert!(regressions(&cur, &base, 25.0).is_empty());
    }

    #[test]
    fn regressions_never_gate_on_sub_floor_wall_times() {
        // A 4 ms stage showing -40% is timer noise, not a regression; the
        // floor silences it whether the short side is current or baseline.
        let base = vec![rate("smoke", 0.004, 1_000.0), rate("video", 2.0, 1_000.0)];
        let cur = vec![rate("smoke", 0.004, 600.0), rate("video", 2.0, 500.0)];
        let offenders = regressions(&cur, &base, 5.0);
        assert_eq!(offenders.len(), 1, "only the long stage gates: {offenders:?}");
        assert!(offenders[0].contains("video"));
        let base = vec![rate("x", 1.0, 1_000.0)];
        let cur = vec![rate("x", 0.01, 600.0)];
        assert!(regressions(&cur, &base, 5.0).is_empty(), "short current side also exempt");
    }

    fn stage(name: &str, wall_s: f64, sim_events: u64) -> BenchStage {
        BenchStage { name: name.into(), wall_s, threads: 1, sim_events, jobs: Vec::new() }
    }

    #[test]
    fn keep_best_takes_stagewise_minimum() {
        let mut a = BenchReport::new("pr6");
        a.stages.push(stage("video", 2.0, 1_000));
        a.stages.push(stage("web", 1.0, 500));
        let mut b = BenchReport::new("pr6");
        b.stages.push(stage("video", 1.5, 1_000)); // faster: adopted
        b.stages.push(stage("web", 3.0, 500)); // slower: ignored
        b.stages.push(stage("mix", 1.0, 200)); // new: appended
        b.stages.push(stage("video", 0.1, 999)); // event mismatch: ignored
        a.keep_best(b);
        assert_eq!(a.stages.len(), 3);
        assert!((a.stages[0].wall_s - 1.5).abs() < 1e-9);
        assert!((a.stages[1].wall_s - 1.0).abs() < 1e-9);
        assert_eq!(a.stages[2].name, "mix");
    }

    #[test]
    fn empty_stage_rate_is_zero() {
        let st = BenchStage {
            name: "x".into(),
            wall_s: 0.0,
            threads: 1,
            sim_events: 0,
            jobs: Vec::new(),
        };
        assert_eq!(st.events_per_sec(), 0.0);
    }
}
