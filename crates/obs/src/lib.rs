//! # powerburst-obs
//!
//! Sim-time observability for the `powerburst` workspace: a metrics and
//! tracing subsystem the simulation layers (proxy, AP, client daemon,
//! energy meter, world) report into, with deterministic exporters the
//! experiment harnesses surface in results and the CLI.
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero overhead when disabled.** The default [`Recorder`] holds no
//!    state; every recording call is a single `Option` check with no heap
//!    allocation. Instrumented hot paths (per-frame, per-burst) stay free.
//! 2. **Deterministic exports.** Metrics and events carry only simulation
//!    quantities (integral microseconds, bytes, counts) and are exported in
//!    catalog / recording order — the same run produces bit-identical JSON
//!    and CSV across repeats and across sweep thread counts. Wall-clock
//!    data is quarantined in [`profile`], which feeds the separate
//!    `BENCH_*.json` perf reports and never enters a metrics export.
//! 3. **Static metric ids.** Counters, gauges, and histograms are keyed by
//!    the enums in [`metrics`]; storage is fixed-size atomic arrays, so the
//!    enabled hot path is also allocation-free.
//!
//! The crate is dependency-free (timestamps are plain `u64` microseconds),
//! so every other workspace crate can depend on it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod report;

pub use events::{EventKind, ObsEvent};
pub use metrics::{Counter, Gauge, Hist, BUCKET_BOUNDS};
pub use profile::{
    delta_lines, parse_stage_rates, regressions, BenchJob, BenchReport, BenchStage, StageRate,
    Stopwatch, MIN_GATE_WALL_S,
};
pub use recorder::{Recorder, RecorderConfig};
pub use report::{HistSnapshot, ObsReport};
