//! The structured event channel.
//!
//! Events are point-in-time records of the interesting moments the paper's
//! evaluation is built around: schedule broadcasts, burst boundaries, slot
//! overrun margins, wake-up lead error, WNIC state transitions, and queue
//! depth samples. They carry only simulation quantities (µs, bytes,
//! counts), so an exported event stream is bit-identical across repeat
//! runs.

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The proxy broadcast a schedule.
    ScheduleBroadcast {
        /// Schedule sequence number.
        seq: u64,
        /// Number of slots.
        entries: u32,
        /// Wire size of the broadcast payload.
        bytes: u32,
        /// Announced time to the next SRP, µs.
        next_srp_us: u64,
        /// The §5 unchanged flag.
        unchanged: bool,
        /// Degraded round-robin layout (overhead ≥ interval).
        saturated: bool,
    },
    /// A per-client burst began.
    BurstStart {
        /// Target client host id.
        client: u32,
        /// Slot budget, µs.
        budget_us: u64,
    },
    /// A per-client burst ended.
    BurstEnd {
        /// Target client host id.
        client: u32,
        /// Airtime actually spent, µs.
        spent_us: u64,
        /// Budget minus spent: negative means the slot overran.
        margin_us: i64,
    },
    /// A client finished waiting for scheduled traffic: how long it was
    /// awake-but-idle before the first frame (or the miss timer) arrived.
    WakeLead {
        /// Client host id.
        client: u32,
        /// Idle listening time, µs.
        lead_us: u64,
        /// What the client had woken for.
        woke_for: &'static str,
    },
    /// A WNIC changed power state.
    WnicState {
        /// Owning client host id.
        client: u32,
        /// State left.
        from: &'static str,
        /// State entered.
        to: &'static str,
    },
    /// Queue depth for one client at an SRP snapshot.
    QueueDepth {
        /// Client host id.
        client: u32,
        /// Queued wire bytes (UDP + buffered TCP).
        bytes: u64,
        /// Queued packets.
        pkts: u64,
    },
    /// A reporting harness (bench target, experiment runner) started: the
    /// options in force, stamped at t=0. Emitted only by harness code —
    /// never by sim-path crates — so result-bearing event streams are
    /// unaffected; it exists so harness banners flow through the
    /// structured channel instead of ad-hoc printing (lint rule D007).
    HarnessBanner {
        /// Harness name (the bench target or experiment id).
        name: &'static str,
        /// Master seed in force.
        seed: u64,
        /// Simulated run duration, µs.
        duration_us: u64,
        /// Sweep worker threads.
        threads: u32,
    },
}

impl EventKind {
    /// Stable kind tag used in exports.
    pub const fn tag(&self) -> &'static str {
        match self {
            EventKind::ScheduleBroadcast { .. } => "schedule_broadcast",
            EventKind::BurstStart { .. } => "burst_start",
            EventKind::BurstEnd { .. } => "burst_end",
            EventKind::WakeLead { .. } => "wake_lead",
            EventKind::WnicState { .. } => "wnic_state",
            EventKind::QueueDepth { .. } => "queue_depth",
            EventKind::HarnessBanner { .. } => "harness_banner",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// Simulation time, µs.
    pub t_us: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl ObsEvent {
    /// Render as one JSON object. All fields are integers, booleans, or
    /// static strings that never need escaping, so this is hand-rolled
    /// (matching `trace::TraceRow::to_json`) rather than pulling in a JSON
    /// dependency.
    pub fn to_json(&self) -> String {
        let head = format!("{{\"t_us\":{},\"kind\":\"{}\"", self.t_us, self.kind.tag());
        let body = match self.kind {
            EventKind::ScheduleBroadcast {
                seq,
                entries,
                bytes,
                next_srp_us,
                unchanged,
                saturated,
            } => {
                format!(
                    ",\"seq\":{seq},\"entries\":{entries},\"bytes\":{bytes},\
                     \"next_srp_us\":{next_srp_us},\"unchanged\":{unchanged},\
                     \"saturated\":{saturated}"
                )
            }
            EventKind::BurstStart { client, budget_us } => {
                format!(",\"client\":{client},\"budget_us\":{budget_us}")
            }
            EventKind::BurstEnd { client, spent_us, margin_us } => {
                format!(",\"client\":{client},\"spent_us\":{spent_us},\"margin_us\":{margin_us}")
            }
            EventKind::WakeLead { client, lead_us, woke_for } => {
                format!(",\"client\":{client},\"lead_us\":{lead_us},\"woke_for\":\"{woke_for}\"")
            }
            EventKind::WnicState { client, from, to } => {
                format!(",\"client\":{client},\"from\":\"{from}\",\"to\":\"{to}\"")
            }
            EventKind::QueueDepth { client, bytes, pkts } => {
                format!(",\"client\":{client},\"bytes\":{bytes},\"pkts\":{pkts}")
            }
            EventKind::HarnessBanner { name, seed, duration_us, threads } => {
                format!(
                    ",\"name\":\"{name}\",\"seed\":{seed},\"duration_us\":{duration_us},\
                     \"threads\":{threads}"
                )
            }
        };
        format!("{head}{body}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shapes() {
        let e = ObsEvent {
            t_us: 1500,
            kind: EventKind::BurstEnd { client: 100, spent_us: 900, margin_us: -50 },
        };
        assert_eq!(
            e.to_json(),
            "{\"t_us\":1500,\"kind\":\"burst_end\",\"client\":100,\"spent_us\":900,\"margin_us\":-50}"
        );
        let s = ObsEvent {
            t_us: 0,
            kind: EventKind::ScheduleBroadcast {
                seq: 3,
                entries: 2,
                bytes: 43,
                next_srp_us: 100_000,
                unchanged: false,
                saturated: true,
            },
        };
        assert!(s.to_json().contains("\"saturated\":true"));
        assert!(s.to_json().contains("\"kind\":\"schedule_broadcast\""));
        let h = ObsEvent {
            t_us: 0,
            kind: EventKind::HarnessBanner {
                name: "fig4_udp_video",
                seed: 7,
                duration_us: 119_000_000,
                threads: 4,
            },
        };
        assert_eq!(
            h.to_json(),
            "{\"t_us\":0,\"kind\":\"harness_banner\",\"name\":\"fig4_udp_video\",\"seed\":7,\
             \"duration_us\":119000000,\"threads\":4}"
        );
    }
}
