//! Plain-data snapshots and the deterministic exporters.
//!
//! An [`ObsReport`] is what a [`crate::Recorder`] export produces: owned
//! vectors of integers in catalog order, safe to ship across sweep worker
//! threads and compare byte-for-byte. The JSON and CSV renderings contain
//! only integral simulation quantities in a fixed order — no floats, no
//! wall-clock data, no hash-map iteration — so a given run's export is
//! bit-identical across repeats and across thread counts.

use crate::events::ObsEvent;
use crate::metrics::{Counter, Gauge, Hist, BUCKET_BOUNDS};

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket counts ([`BUCKET_BOUNDS`] plus a final overflow bucket).
    pub buckets: Vec<u64>,
}

/// Everything one recorder collected, as plain data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsReport {
    /// Counter values in [`Counter::ALL`] order.
    pub counters: Vec<u64>,
    /// Gauge values in [`Gauge::ALL`] order.
    pub gauges: Vec<i64>,
    /// Histogram snapshots in [`Hist::ALL`] order.
    pub hists: Vec<HistSnapshot>,
    /// Recorded events, in recording order.
    pub events: Vec<ObsEvent>,
    /// Events discarded after the channel cap was reached.
    pub events_dropped: u64,
}

impl ObsReport {
    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.idx()]
    }

    /// Value of one gauge.
    pub fn gauge(&self, g: Gauge) -> i64 {
        self.gauges[g.idx()]
    }

    /// Snapshot of one histogram.
    pub fn hist(&self, h: Hist) -> &HistSnapshot {
        &self.hists[h.idx()]
    }

    /// Render the metrics (counters, gauges, histograms) as one JSON
    /// object. Hand-rolled: every field is an integer or a static name.
    pub fn metrics_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\"counters\":{");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", c.name(), self.counters[i]));
        }
        s.push_str("},\"gauges\":{");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", g.name(), self.gauges[i]));
        }
        s.push_str("},\"hists\":{");
        for (i, h) in Hist::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let hs = &self.hists[i];
            s.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.name(),
                hs.count,
                hs.sum
            ));
            for (j, b) in hs.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&b.to_string());
            }
            s.push_str("]}");
        }
        s.push_str(&format!("}},\"events_dropped\":{}}}", self.events_dropped));
        s
    }

    /// Render the metrics as CSV: `class,name,key,value` rows in catalog
    /// order. Histograms emit one row per bucket (keyed by its upper
    /// bound, `inf` for overflow) plus `count` and `sum` rows.
    pub fn metrics_csv(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("class,name,key,value\n");
        for (i, c) in Counter::ALL.iter().enumerate() {
            s.push_str(&format!("counter,{},,{}\n", c.name(), self.counters[i]));
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            s.push_str(&format!("gauge,{},,{}\n", g.name(), self.gauges[i]));
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            let hs = &self.hists[i];
            s.push_str(&format!("hist,{},count,{}\n", h.name(), hs.count));
            s.push_str(&format!("hist,{},sum,{}\n", h.name(), hs.sum));
            for (j, b) in hs.buckets.iter().enumerate() {
                match BUCKET_BOUNDS.get(j) {
                    Some(bound) => {
                        s.push_str(&format!("hist,{},le_{},{}\n", h.name(), bound, b));
                    }
                    None => s.push_str(&format!("hist,{},le_inf,{}\n", h.name(), b)),
                }
            }
        }
        s
    }

    /// Render the event stream as JSON-lines, one event per line, in
    /// recording order.
    pub fn events_jsonl(&self) -> String {
        let mut s = String::with_capacity(self.events.len() * 80);
        for e in &self.events {
            s.push_str(&e.to_json());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;
    use crate::recorder::{Recorder, RecorderConfig};

    fn sample_report() -> ObsReport {
        let r = Recorder::new(RecorderConfig::default());
        r.incr(Counter::SchedulesBuilt);
        r.add(Counter::UdpBytesSent, 4_242);
        r.gauge_set(Gauge::BacklogBytes, 17);
        r.observe(Hist::WakeLeadUs, 100);
        r.event(10, EventKind::QueueDepth { client: 100, bytes: 512, pkts: 2 });
        r.export().unwrap()
    }

    #[test]
    fn json_contains_catalog_in_order() {
        let j = sample_report().metrics_json();
        assert!(j.starts_with("{\"counters\":{\"schedules_built\":1,"));
        assert!(j.contains("\"udp_bytes_sent\":4242"));
        assert!(j.contains("\"backlog_bytes\":17"));
        assert!(j.contains("\"wake_lead_us\":{\"count\":1,\"sum\":100,\"buckets\":["));
        assert!(j.ends_with("\"events_dropped\":0}"));
    }

    #[test]
    fn csv_has_header_and_bucket_rows() {
        let c = sample_report().metrics_csv();
        assert!(c.starts_with("class,name,key,value\n"));
        assert!(c.contains("counter,udp_bytes_sent,,4242\n"));
        assert!(c.contains("hist,wake_lead_us,count,1\n"));
        assert!(c.contains("hist,wake_lead_us,le_inf,0\n"));
    }

    #[test]
    fn exports_are_reproducible() {
        let a = sample_report();
        let b = sample_report();
        assert_eq!(a.metrics_json(), b.metrics_json());
        assert_eq!(a.metrics_csv(), b.metrics_csv());
        assert_eq!(a.events_jsonl(), b.events_jsonl());
    }

    #[test]
    fn events_jsonl_one_line_per_event() {
        let rep = sample_report();
        assert_eq!(rep.events_jsonl().lines().count(), 1);
        assert!(rep.events_jsonl().contains("\"kind\":\"queue_depth\""));
    }
}
