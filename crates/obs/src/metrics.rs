//! The static metric catalog.
//!
//! Every metric the workspace records is declared here with a stable name
//! and a dense index; storage in the recorder is a fixed-size array per
//! metric class, so recording never allocates and exports never depend on
//! hash-map iteration order. Adding a metric means adding an enum variant,
//! its `ALL` entry, and its `name()` — a unit test cross-checks the three.

/// Shared histogram bucket upper bounds: powers of two from 1 to 2²⁰.
///
/// The range covers every quantity we histogram — microsecond latencies up
/// to ~1 s and queue depths up to ~1 MiB — with a final implicit overflow
/// bucket for anything larger. One shared geometry keeps exports compact
/// and comparisons across histograms trivial.
pub const BUCKET_BOUNDS: [u64; 21] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
    262144, 524288, 1048576,
];

/// Bucket count per histogram: one per bound plus the overflow bucket.
pub const BUCKETS: usize = BUCKET_BOUNDS.len() + 1;

/// Monotone event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Schedules built by the proxy (one per SRP).
    SchedulesBuilt,
    /// Schedules flagged `unchanged` (clients may skip the next SRP wake).
    SchedulesUnchanged,
    /// Schedules flagged saturated (degraded round-robin layout).
    SchedulesSaturated,
    /// Schedule entries whose µs offsets/durations overflowed the u32 wire
    /// range and were clamped.
    WireOverflows,
    /// Bursts the proxy started.
    BurstsStarted,
    /// Bursts the proxy completed.
    BurstsCompleted,
    /// Bursts that ran past their slot budget (plus grace).
    SlotOverruns,
    /// UDP frames the proxy released downstream.
    UdpFramesSent,
    /// UDP wire bytes the proxy released downstream.
    UdpBytesSent,
    /// TCP payload bytes the proxy fed into splices during bursts.
    TcpBytesFed,
    /// Packets dropped at the proxy's per-client queues (capacity).
    ProxyQueueDrops,
    /// Frames the AP forwarded downlink (wire → radio).
    ApForwardedDown,
    /// Frames the AP forwarded uplink (radio → wire).
    ApForwardedUp,
    /// AP FIFO-ordering violations detected by the delay guard.
    ApFifoViolations,
    /// Schedule broadcasts a client received and applied.
    ClientSchedulesApplied,
    /// SRPs a client woke for but no schedule arrived (miss timer fired).
    ClientSchedulesMissed,
    /// Marked (end-of-burst) frames clients observed.
    ClientMarksSeen,
    /// SRP wake-ups clients skipped thanks to the `unchanged` flag.
    ClientSkippedWakes,
    /// WNIC transitions into high-power (wake) mode.
    WnicWakes,
    /// WNIC transitions into low-power (sleep) mode.
    WnicSleeps,
    /// Events dispatched by the simulation world loop.
    WorldEvents,
    /// Runtime invariant violations recorded by the audit layer.
    InvariantViolations,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 22] = [
        Counter::SchedulesBuilt,
        Counter::SchedulesUnchanged,
        Counter::SchedulesSaturated,
        Counter::WireOverflows,
        Counter::BurstsStarted,
        Counter::BurstsCompleted,
        Counter::SlotOverruns,
        Counter::UdpFramesSent,
        Counter::UdpBytesSent,
        Counter::TcpBytesFed,
        Counter::ProxyQueueDrops,
        Counter::ApForwardedDown,
        Counter::ApForwardedUp,
        Counter::ApFifoViolations,
        Counter::ClientSchedulesApplied,
        Counter::ClientSchedulesMissed,
        Counter::ClientMarksSeen,
        Counter::ClientSkippedWakes,
        Counter::WnicWakes,
        Counter::WnicSleeps,
        Counter::WorldEvents,
        Counter::InvariantViolations,
    ];

    /// Number of counters.
    pub const COUNT: usize = Counter::ALL.len();

    /// Stable export name.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::SchedulesBuilt => "schedules_built",
            Counter::SchedulesUnchanged => "schedules_unchanged",
            Counter::SchedulesSaturated => "schedules_saturated",
            Counter::WireOverflows => "wire_overflows",
            Counter::BurstsStarted => "bursts_started",
            Counter::BurstsCompleted => "bursts_completed",
            Counter::SlotOverruns => "slot_overruns",
            Counter::UdpFramesSent => "udp_frames_sent",
            Counter::UdpBytesSent => "udp_bytes_sent",
            Counter::TcpBytesFed => "tcp_bytes_fed",
            Counter::ProxyQueueDrops => "proxy_queue_drops",
            Counter::ApForwardedDown => "ap_forwarded_down",
            Counter::ApForwardedUp => "ap_forwarded_up",
            Counter::ApFifoViolations => "ap_fifo_violations",
            Counter::ClientSchedulesApplied => "client_schedules_applied",
            Counter::ClientSchedulesMissed => "client_schedules_missed",
            Counter::ClientMarksSeen => "client_marks_seen",
            Counter::ClientSkippedWakes => "client_skipped_wakes",
            Counter::WnicWakes => "wnic_wakes",
            Counter::WnicSleeps => "wnic_sleeps",
            Counter::WorldEvents => "world_events",
            Counter::InvariantViolations => "invariant_violations",
        }
    }

    /// Dense storage index.
    #[inline]
    pub const fn idx(self) -> usize {
        self as usize
    }
}

/// Last-value gauges (signed; deltas may go negative transiently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Open TCP splices at the proxy.
    ActiveSplices,
    /// Total bytes buffered across all proxy client queues.
    BacklogBytes,
    /// Entry count of the most recent schedule.
    LastScheduleEntries,
    /// WNICs currently in high-power mode.
    RadiosAwake,
}

impl Gauge {
    /// Every gauge, in export order.
    pub const ALL: [Gauge; 4] =
        [Gauge::ActiveSplices, Gauge::BacklogBytes, Gauge::LastScheduleEntries, Gauge::RadiosAwake];

    /// Number of gauges.
    pub const COUNT: usize = Gauge::ALL.len();

    /// Stable export name.
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::ActiveSplices => "active_splices",
            Gauge::BacklogBytes => "backlog_bytes",
            Gauge::LastScheduleEntries => "last_schedule_entries",
            Gauge::RadiosAwake => "radios_awake",
        }
    }

    /// Dense storage index.
    #[inline]
    pub const fn idx(self) -> usize {
        self as usize
    }
}

/// Fixed-bucket histograms (bounds shared via [`BUCKET_BOUNDS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Spare time left in a slot when its burst completed, µs.
    SlotMarginUs,
    /// Overshoot past the slot budget when a burst overran, µs.
    SlotOverrunUs,
    /// Client wake-up lead error: awake-but-idle time before traffic, µs.
    WakeLeadUs,
    /// Per-client queue depth in bytes, sampled at each SRP snapshot.
    QueueDepthBytes,
    /// Per-client queue depth in packets, sampled at each SRP snapshot.
    QueueDepthPkts,
    /// Scheduled burst slot lengths, µs.
    BurstLenUs,
}

impl Hist {
    /// Every histogram, in export order.
    pub const ALL: [Hist; 6] = [
        Hist::SlotMarginUs,
        Hist::SlotOverrunUs,
        Hist::WakeLeadUs,
        Hist::QueueDepthBytes,
        Hist::QueueDepthPkts,
        Hist::BurstLenUs,
    ];

    /// Number of histograms.
    pub const COUNT: usize = Hist::ALL.len();

    /// Stable export name.
    pub const fn name(self) -> &'static str {
        match self {
            Hist::SlotMarginUs => "slot_margin_us",
            Hist::SlotOverrunUs => "slot_overrun_us",
            Hist::WakeLeadUs => "wake_lead_us",
            Hist::QueueDepthBytes => "queue_depth_bytes",
            Hist::QueueDepthPkts => "queue_depth_pkts",
            Hist::BurstLenUs => "burst_len_us",
        }
    }

    /// Dense storage index.
    #[inline]
    pub const fn idx(self) -> usize {
        self as usize
    }

    /// Bucket index for a sample: the first bound ≥ `v`, else overflow.
    #[inline]
    pub fn bucket(v: u64) -> usize {
        BUCKET_BOUNDS.partition_point(|&b| b < v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_indices_are_dense_and_ordered() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.idx(), i, "counter {} out of order", c.name());
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.idx(), i, "gauge {} out of order", g.name());
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.idx(), i, "hist {} out of order", h.name());
        }
    }

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        names.extend(Hist::ALL.iter().map(|h| h.name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate metric name");
    }

    #[test]
    fn bucket_selection() {
        assert_eq!(Hist::bucket(0), 0);
        assert_eq!(Hist::bucket(1), 0);
        assert_eq!(Hist::bucket(2), 1);
        assert_eq!(Hist::bucket(3), 2);
        assert_eq!(Hist::bucket(1_048_576), BUCKET_BOUNDS.len() - 1);
        assert_eq!(Hist::bucket(u64::MAX), BUCKET_BOUNDS.len());
    }
}
