//! The recorder handle the instrumented layers hold.
//!
//! [`Recorder`] is a cheap-to-clone handle over an optional shared core.
//! The disabled recorder (the default) is a `None`: every recording call
//! is one branch, no atomics touched, no heap allocation — instrumented
//! hot paths cost nothing when observability is off. The enabled core
//! stores counters/gauges/histograms in fixed-size atomic arrays indexed
//! by the static catalog, so the enabled hot path is allocation-free too;
//! the event channel is pre-allocated to its cap for the same reason.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::events::{EventKind, ObsEvent};
use crate::metrics::{Counter, Gauge, Hist, BUCKETS};
use crate::report::{HistSnapshot, ObsReport};

/// Recorder construction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Record structured events (metrics are always on for an enabled
    /// recorder; the event channel is the optional, heavier half).
    pub events: bool,
    /// Maximum events retained; later events are counted as dropped. The
    /// buffer is pre-allocated to this cap so recording never allocates.
    pub event_cap: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig { events: true, event_cap: 65_536 }
    }
}

struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistCore {
    fn new() -> Self {
        HistCore {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

struct ObsCore {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicI64; Gauge::COUNT],
    hists: [HistCore; Hist::COUNT],
    events_on: bool,
    event_cap: usize,
    events: Mutex<Vec<ObsEvent>>,
    events_dropped: AtomicU64,
}

/// Handle through which the simulation layers record metrics and events.
///
/// A recorder is scoped to one simulation run: `run_scenario` constructs
/// one per run, so sweeps running many runs in parallel never share state
/// and exports stay deterministic regardless of thread count.
#[derive(Clone, Default)]
pub struct Recorder {
    core: Option<Arc<ObsCore>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.core.is_some()).finish()
    }
}

impl Recorder {
    /// The no-op recorder: records nothing, costs one branch per call.
    pub const fn disabled() -> Self {
        Recorder { core: None }
    }

    /// An enabled recorder.
    pub fn new(cfg: RecorderConfig) -> Self {
        Recorder {
            core: Some(Arc::new(ObsCore {
                counters: [const { AtomicU64::new(0) }; Counter::COUNT],
                gauges: [const { AtomicI64::new(0) }; Gauge::COUNT],
                hists: std::array::from_fn(|_| HistCore::new()),
                events_on: cfg.events,
                event_cap: cfg.event_cap,
                events: Mutex::new(Vec::with_capacity(if cfg.events { cfg.event_cap } else { 0 })),
                events_dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Is this recorder collecting anything at all?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Is the event channel collecting?
    #[inline]
    pub fn events_on(&self) -> bool {
        self.core.as_ref().is_some_and(|c| c.events_on)
    }

    /// Add `v` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, v: u64) {
        if let Some(core) = &self.core {
            core.counters[c.idx()].fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Set a gauge to `v`.
    #[inline]
    pub fn gauge_set(&self, g: Gauge, v: i64) {
        if let Some(core) = &self.core {
            core.gauges[g.idx()].store(v, Ordering::Relaxed);
        }
    }

    /// Add `dv` (possibly negative) to a gauge.
    #[inline]
    pub fn gauge_add(&self, g: Gauge, dv: i64) {
        if let Some(core) = &self.core {
            core.gauges[g.idx()].fetch_add(dv, Ordering::Relaxed);
        }
    }

    /// Record a histogram sample.
    #[inline]
    pub fn observe(&self, h: Hist, v: u64) {
        if let Some(core) = &self.core {
            let hc = &core.hists[h.idx()];
            hc.buckets[Hist::bucket(v)].fetch_add(1, Ordering::Relaxed);
            hc.count.fetch_add(1, Ordering::Relaxed);
            hc.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Record a structured event at simulation time `t_us`.
    #[inline]
    pub fn event(&self, t_us: u64, kind: EventKind) {
        let Some(core) = &self.core else { return };
        if !core.events_on {
            return;
        }
        let mut ev = core.events.lock().expect("obs event channel poisoned");
        if ev.len() < core.event_cap {
            ev.push(ObsEvent { t_us, kind });
        } else {
            core.events_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot everything recorded so far into a plain-data report.
    /// Returns `None` for the disabled recorder.
    pub fn export(&self) -> Option<ObsReport> {
        let core = self.core.as_ref()?;
        let counters =
            Counter::ALL.iter().map(|c| core.counters[c.idx()].load(Ordering::Relaxed)).collect();
        let gauges =
            Gauge::ALL.iter().map(|g| core.gauges[g.idx()].load(Ordering::Relaxed)).collect();
        let hists = Hist::ALL
            .iter()
            .map(|h| {
                let hc = &core.hists[h.idx()];
                HistSnapshot {
                    count: hc.count.load(Ordering::Relaxed),
                    sum: hc.sum.load(Ordering::Relaxed),
                    buckets: hc.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                }
            })
            .collect();
        let events = core.events.lock().expect("obs event channel poisoned").clone();
        Some(ObsReport {
            counters,
            gauges,
            hists,
            events,
            events_dropped: core.events_dropped.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_exports_nothing() {
        let r = Recorder::disabled();
        r.incr(Counter::BurstsStarted);
        r.observe(Hist::WakeLeadUs, 7);
        r.event(1, EventKind::BurstStart { client: 1, budget_us: 10 });
        assert!(!r.enabled());
        assert!(!r.events_on());
        assert!(r.export().is_none());
    }

    #[test]
    fn counters_gauges_hists_round_trip() {
        let r = Recorder::new(RecorderConfig::default());
        r.incr(Counter::SchedulesBuilt);
        r.add(Counter::UdpBytesSent, 1_000);
        r.gauge_set(Gauge::LastScheduleEntries, 5);
        r.gauge_add(Gauge::ActiveSplices, 2);
        r.gauge_add(Gauge::ActiveSplices, -1);
        r.observe(Hist::SlotMarginUs, 3);
        r.observe(Hist::SlotMarginUs, 1_000_000_000);
        let rep = r.export().unwrap();
        assert_eq!(rep.counter(Counter::SchedulesBuilt), 1);
        assert_eq!(rep.counter(Counter::UdpBytesSent), 1_000);
        assert_eq!(rep.counter(Counter::BurstsStarted), 0);
        assert_eq!(rep.gauge(Gauge::LastScheduleEntries), 5);
        assert_eq!(rep.gauge(Gauge::ActiveSplices), 1);
        let h = rep.hist(Hist::SlotMarginUs);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1_000_000_003);
        assert_eq!(h.buckets.iter().sum::<u64>(), 2);
        assert_eq!(*h.buckets.last().unwrap(), 1, "huge sample lands in overflow");
    }

    #[test]
    fn event_channel_caps_and_counts_drops() {
        let r = Recorder::new(RecorderConfig { events: true, event_cap: 2 });
        for i in 0..5 {
            r.event(i, EventKind::BurstStart { client: 1, budget_us: i });
        }
        let rep = r.export().unwrap();
        assert_eq!(rep.events.len(), 2);
        assert_eq!(rep.events_dropped, 3);
    }

    #[test]
    fn events_can_be_disabled_independently() {
        let r = Recorder::new(RecorderConfig { events: false, event_cap: 16 });
        assert!(r.enabled());
        assert!(!r.events_on());
        r.event(1, EventKind::BurstStart { client: 1, budget_us: 1 });
        r.incr(Counter::BurstsStarted);
        let rep = r.export().unwrap();
        assert!(rep.events.is_empty());
        assert_eq!(rep.counter(Counter::BurstsStarted), 1);
    }

    #[test]
    fn clones_share_the_core() {
        let r = Recorder::new(RecorderConfig::default());
        let r2 = r.clone();
        r.incr(Counter::WnicWakes);
        r2.incr(Counter::WnicWakes);
        assert_eq!(r.export().unwrap().counter(Counter::WnicWakes), 2);
    }
}
