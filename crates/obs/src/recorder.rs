//! The recorder handle the instrumented layers hold.
//!
//! [`Recorder`] is a cheap-to-clone handle over an optional shared core.
//! The disabled recorder (the default) is a `None`: every recording call
//! is one branch, no atomics touched, no heap allocation — instrumented
//! hot paths cost nothing when observability is off. The enabled core
//! stores counters/gauges/histograms in fixed-size atomic arrays indexed
//! by the static catalog, so the enabled hot path is allocation-free too;
//! the event channel is pre-allocated to its cap for the same reason.
//!
//! ## Lanes
//!
//! A sharded world (DESIGN.md §17) records from several worker threads at
//! once. Counters, histograms, and `gauge_add` are commutative atomics, so
//! their totals are thread-order independent; the event channel and
//! `gauge_set` are not. [`Recorder::lane`] derives a handle bound to one
//! **lane**: a private event buffer plus private `gauge_set` slots, written
//! by exactly one shard. [`Recorder::export`] merges lanes
//! deterministically — events concatenated in lane order then stably
//! sorted by timestamp, set-gauges resolved highest-written-lane-wins.
//! A single-lane recorder (the default) is byte-identical to the
//! pre-lane implementation.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::events::{EventKind, ObsEvent};
use crate::metrics::{Counter, Gauge, Hist, BUCKETS};
use crate::report::{HistSnapshot, ObsReport};

/// Recorder construction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Record structured events (metrics are always on for an enabled
    /// recorder; the event channel is the optional, heavier half).
    pub events: bool,
    /// Maximum events retained; later events are counted as dropped. The
    /// buffer is pre-allocated to this cap so recording never allocates.
    /// With multiple lanes the cap applies per lane while recording and
    /// again to the merged stream at export.
    pub event_cap: usize,
    /// Number of independent recording lanes (clamped to ≥ 1). One unless
    /// the world is sharded, in which case shard *k* records on lane *k*.
    pub lanes: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig { events: true, event_cap: 65_536, lanes: 1 }
    }
}

struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistCore {
    fn new() -> Self {
        HistCore {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Per-lane state: everything whose outcome depends on *write order*
/// rather than a commutative sum. Each lane has exactly one writer (one
/// shard), so within a lane the legacy sequential semantics hold.
struct LaneCore {
    /// `gauge_set` slots: last value stored by this lane's writer.
    gauge_set: [AtomicI64; Gauge::COUNT],
    /// 1 once this lane has `gauge_set` the matching gauge.
    gauge_written: [AtomicU64; Gauge::COUNT],
    events: Mutex<Vec<ObsEvent>>,
    events_dropped: AtomicU64,
}

impl LaneCore {
    fn new(events_on: bool, event_cap: usize) -> Self {
        LaneCore {
            gauge_set: [const { AtomicI64::new(0) }; Gauge::COUNT],
            gauge_written: [const { AtomicU64::new(0) }; Gauge::COUNT],
            events: Mutex::new(Vec::with_capacity(if events_on { event_cap } else { 0 })),
            events_dropped: AtomicU64::new(0),
        }
    }
}

struct ObsCore {
    counters: [AtomicU64; Counter::COUNT],
    /// Accumulators for `gauge_add` (commutative, shared across lanes).
    gauges: [AtomicI64; Gauge::COUNT],
    hists: [HistCore; Hist::COUNT],
    events_on: bool,
    event_cap: usize,
    lanes: Vec<LaneCore>,
}

/// Handle through which the simulation layers record metrics and events.
///
/// A recorder is scoped to one simulation run: `run_scenario` constructs
/// one per run, so sweeps running many runs in parallel never share state
/// and exports stay deterministic regardless of thread count.
#[derive(Clone, Default)]
pub struct Recorder {
    core: Option<Arc<ObsCore>>,
    /// Which lane this handle writes events / set-gauges to.
    lane: u32,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.core.is_some())
            .field("lane", &self.lane)
            .finish()
    }
}

impl Recorder {
    /// The no-op recorder: records nothing, costs one branch per call.
    pub const fn disabled() -> Self {
        Recorder { core: None, lane: 0 }
    }

    /// An enabled recorder, writing on lane 0.
    pub fn new(cfg: RecorderConfig) -> Self {
        let lanes = cfg.lanes.max(1);
        Recorder {
            core: Some(Arc::new(ObsCore {
                counters: [const { AtomicU64::new(0) }; Counter::COUNT],
                gauges: [const { AtomicI64::new(0) }; Gauge::COUNT],
                hists: std::array::from_fn(|_| HistCore::new()),
                events_on: cfg.events,
                event_cap: cfg.event_cap,
                lanes: (0..lanes).map(|_| LaneCore::new(cfg.events, cfg.event_cap)).collect(),
            })),
            lane: 0,
        }
    }

    /// A handle over the same core, bound to lane `idx` (clamped to the
    /// configured lane count). Shared-atomic paths (counters, histograms,
    /// `gauge_add`) are unaffected; events and `gauge_set` go to the lane.
    pub fn lane(&self, idx: usize) -> Recorder {
        let max = match &self.core {
            Some(core) => core.lanes.len() - 1,
            None => 0,
        };
        Recorder { core: self.core.clone(), lane: idx.min(max) as u32 }
    }

    /// Number of configured lanes (1 for the disabled recorder).
    pub fn lane_count(&self) -> usize {
        self.core.as_ref().map_or(1, |c| c.lanes.len())
    }

    /// Is this recorder collecting anything at all?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Is the event channel collecting?
    #[inline]
    pub fn events_on(&self) -> bool {
        self.core.as_ref().is_some_and(|c| c.events_on)
    }

    /// Add `v` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, v: u64) {
        if let Some(core) = &self.core {
            core.counters[c.idx()].fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Set a gauge to `v` (recorded on this handle's lane; the export
    /// value for a set-gauge is the highest lane that ever set it). A
    /// gauge should be either set-style or add-style, not both: a lane's
    /// set value hides the shared add accumulator at export.
    #[inline]
    pub fn gauge_set(&self, g: Gauge, v: i64) {
        if let Some(core) = &self.core {
            let lane = &core.lanes[self.lane as usize];
            lane.gauge_set[g.idx()].store(v, Ordering::Relaxed);
            lane.gauge_written[g.idx()].store(1, Ordering::Relaxed);
        }
    }

    /// Add `dv` (possibly negative) to a gauge.
    #[inline]
    pub fn gauge_add(&self, g: Gauge, dv: i64) {
        if let Some(core) = &self.core {
            core.gauges[g.idx()].fetch_add(dv, Ordering::Relaxed);
        }
    }

    /// Record a histogram sample.
    #[inline]
    pub fn observe(&self, h: Hist, v: u64) {
        if let Some(core) = &self.core {
            let hc = &core.hists[h.idx()];
            hc.buckets[Hist::bucket(v)].fetch_add(1, Ordering::Relaxed);
            hc.count.fetch_add(1, Ordering::Relaxed);
            hc.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Record a structured event at simulation time `t_us` on this
    /// handle's lane.
    #[inline]
    pub fn event(&self, t_us: u64, kind: EventKind) {
        let Some(core) = &self.core else { return };
        if !core.events_on {
            return;
        }
        let lane = &core.lanes[self.lane as usize];
        let mut ev = lane.events.lock().expect("obs event channel poisoned");
        if ev.len() < core.event_cap {
            ev.push(ObsEvent { t_us, kind });
        } else {
            lane.events_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot everything recorded so far into a plain-data report.
    /// Returns `None` for the disabled recorder.
    ///
    /// Lane merge: events are concatenated in lane order and stably
    /// sorted by timestamp (within a lane, recording order is time order,
    /// so one lane exports its events byte-identically to the pre-lane
    /// recorder); set-gauges resolve to the highest lane that wrote them,
    /// falling back to the shared `gauge_add` accumulator. The merge
    /// depends only on what each single-writer lane recorded — never on
    /// cross-thread timing.
    pub fn export(&self) -> Option<ObsReport> {
        let core = self.core.as_ref()?;
        let counters =
            Counter::ALL.iter().map(|c| core.counters[c.idx()].load(Ordering::Relaxed)).collect();
        let gauges = Gauge::ALL
            .iter()
            .map(|g| {
                for lane in core.lanes.iter().rev() {
                    if lane.gauge_written[g.idx()].load(Ordering::Relaxed) != 0 {
                        return lane.gauge_set[g.idx()].load(Ordering::Relaxed);
                    }
                }
                core.gauges[g.idx()].load(Ordering::Relaxed)
            })
            .collect();
        let hists = Hist::ALL
            .iter()
            .map(|h| {
                let hc = &core.hists[h.idx()];
                HistSnapshot {
                    count: hc.count.load(Ordering::Relaxed),
                    sum: hc.sum.load(Ordering::Relaxed),
                    buckets: hc.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                }
            })
            .collect();
        let mut events: Vec<ObsEvent> = Vec::new();
        let mut events_dropped = 0;
        for lane in &core.lanes {
            events.extend(lane.events.lock().expect("obs event channel poisoned").iter().cloned());
            events_dropped += lane.events_dropped.load(Ordering::Relaxed);
        }
        if core.lanes.len() > 1 {
            events.sort_by_key(|e| e.t_us);
            if events.len() > core.event_cap {
                events_dropped += (events.len() - core.event_cap) as u64;
                events.truncate(core.event_cap);
            }
        }
        Some(ObsReport { counters, gauges, hists, events, events_dropped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_exports_nothing() {
        let r = Recorder::disabled();
        r.incr(Counter::BurstsStarted);
        r.observe(Hist::WakeLeadUs, 7);
        r.event(1, EventKind::BurstStart { client: 1, budget_us: 10 });
        assert!(!r.enabled());
        assert!(!r.events_on());
        assert!(r.export().is_none());
    }

    #[test]
    fn counters_gauges_hists_round_trip() {
        let r = Recorder::new(RecorderConfig::default());
        r.incr(Counter::SchedulesBuilt);
        r.add(Counter::UdpBytesSent, 1_000);
        r.gauge_set(Gauge::LastScheduleEntries, 5);
        r.gauge_add(Gauge::ActiveSplices, 2);
        r.gauge_add(Gauge::ActiveSplices, -1);
        r.observe(Hist::SlotMarginUs, 3);
        r.observe(Hist::SlotMarginUs, 1_000_000_000);
        let rep = r.export().unwrap();
        assert_eq!(rep.counter(Counter::SchedulesBuilt), 1);
        assert_eq!(rep.counter(Counter::UdpBytesSent), 1_000);
        assert_eq!(rep.counter(Counter::BurstsStarted), 0);
        assert_eq!(rep.gauge(Gauge::LastScheduleEntries), 5);
        assert_eq!(rep.gauge(Gauge::ActiveSplices), 1);
        let h = rep.hist(Hist::SlotMarginUs);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1_000_000_003);
        assert_eq!(h.buckets.iter().sum::<u64>(), 2);
        assert_eq!(*h.buckets.last().unwrap(), 1, "huge sample lands in overflow");
    }

    #[test]
    fn event_channel_caps_and_counts_drops() {
        let r = Recorder::new(RecorderConfig { events: true, event_cap: 2, lanes: 1 });
        for i in 0..5 {
            r.event(i, EventKind::BurstStart { client: 1, budget_us: i });
        }
        let rep = r.export().unwrap();
        assert_eq!(rep.events.len(), 2);
        assert_eq!(rep.events_dropped, 3);
    }

    #[test]
    fn events_can_be_disabled_independently() {
        let r = Recorder::new(RecorderConfig { events: false, event_cap: 16, lanes: 1 });
        assert!(r.enabled());
        assert!(!r.events_on());
        r.event(1, EventKind::BurstStart { client: 1, budget_us: 1 });
        r.incr(Counter::BurstsStarted);
        let rep = r.export().unwrap();
        assert!(rep.events.is_empty());
        assert_eq!(rep.counter(Counter::BurstsStarted), 1);
    }

    #[test]
    fn lanes_merge_deterministically() {
        let r = Recorder::new(RecorderConfig { events: true, event_cap: 8, lanes: 3 });
        let l1 = r.lane(1);
        let l2 = r.lane(2);
        // Counters stay shared.
        r.incr(Counter::WnicWakes);
        l1.incr(Counter::WnicWakes);
        l2.incr(Counter::WnicWakes);
        // Events interleave by timestamp across lanes, ties in lane order.
        l2.event(5, EventKind::BurstStart { client: 2, budget_us: 0 });
        l1.event(3, EventKind::BurstStart { client: 1, budget_us: 0 });
        r.event(5, EventKind::BurstStart { client: 0, budget_us: 0 });
        // Set-gauges: highest writing lane wins.
        r.gauge_set(Gauge::LastScheduleEntries, 10);
        l1.gauge_set(Gauge::LastScheduleEntries, 11);
        // Add-gauges accumulate across lanes as before.
        r.gauge_add(Gauge::ActiveSplices, 2);
        l2.gauge_add(Gauge::ActiveSplices, 1);
        let rep = r.export().unwrap();
        assert_eq!(rep.counter(Counter::WnicWakes), 3);
        assert_eq!(rep.events.iter().map(|e| e.t_us).collect::<Vec<_>>(), vec![3, 5, 5]);
        let EventKind::BurstStart { client, .. } = rep.events[1].kind else { panic!() };
        assert_eq!(client, 0, "lane 0 sorts before lane 2 at the same timestamp");
        assert_eq!(rep.gauge(Gauge::LastScheduleEntries), 11);
        assert_eq!(rep.gauge(Gauge::ActiveSplices), 3);
    }

    #[test]
    fn lane_index_clamps_and_single_lane_matches_legacy() {
        let r = Recorder::new(RecorderConfig::default());
        assert_eq!(r.lane_count(), 1);
        let clamped = r.lane(7); // only lane 0 exists
        clamped.event(1, EventKind::BurstStart { client: 9, budget_us: 0 });
        clamped.gauge_set(Gauge::BacklogBytes, 42);
        let rep = r.export().unwrap();
        assert_eq!(rep.events.len(), 1);
        assert_eq!(rep.gauge(Gauge::BacklogBytes), 42);
        assert_eq!(Recorder::disabled().lane(3).lane_count(), 1);
    }

    #[test]
    fn clones_share_the_core() {
        let r = Recorder::new(RecorderConfig::default());
        let r2 = r.clone();
        r.incr(Counter::WnicWakes);
        r2.incr(Counter::WnicWakes);
        assert_eq!(r.export().unwrap().counter(Counter::WnicWakes), 2);
    }
}
