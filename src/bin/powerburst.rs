//! `powerburst` — command-line front end for the reproduction.
//!
//! ```text
//! powerburst run [--clients N] [--pattern P] [--interval I] [--secs S]
//!                [--seed K] [--threads N] [--web N] [--ftp BYTES]
//!                [--live] [--psm] [--static] [--admission]
//!                [--trace-out FILE] [--metrics-out FILE]
//!                [--trace-events FILE] [--fail-on-invariants]
//! powerburst bench [--secs S] [--seed K] [--threads N] [--repeat R]
//!                  [--out FILE] [--metrics-out FILE] [--baseline FILE]
//!                  [--fail-on-regression PCT]
//! powerburst calibrate [--seed K]
//! powerburst experiment <name>|all [--secs S] [--seed K]
//! powerburst list
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency budget is
//! deliberately small); every flag has a sane paper-default.

use std::process::ExitCode;

use powerburst::prelude::*;
use powerburst::scenario::experiments as exp;
use powerburst::scenario::report::{fmt_summary, Table};
use powerburst::scenario::NetworkConfig;
use powerburst::trace::to_jsonl;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "run" => cmd_run(rest),
        "bench" => cmd_bench(rest),
        "calibrate" => cmd_calibrate(rest),
        "experiment" => cmd_experiment(rest),
        "list" => {
            println!("experiments:");
            for (name, desc) in EXPERIMENTS {
                println!("  {name:<24} {desc}");
            }
            ExitCode::SUCCESS
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "powerburst — ICPP 2004 transparent power-aware proxy reproduction

USAGE:
  powerburst run [--clients N] [--pattern 56k|256k|512k|split|mix]
                 [--interval 100|500|var] [--secs S] [--seed K]
                 [--policy fixed|variable|channel|buffer]
                 [--cells N] [--threads N] [--coord-pool PERMILLE]
                 [--stagger-ms M]
                 [--web N] [--ftp BYTES] [--live] [--psm] [--static]
                 [--admission] [--trace-out FILE]
                 [--metrics-out FILE] [--trace-events FILE]
                 [--fail-on-invariants]
                 [--fault-loss P] [--fault-dup P] [--fault-reorder P]
                 [--fault-reorder-ms M] [--fault-sched-drop P]
                 [--fault-jitter-ms M] [--fault-jitter-prob P]
                 [--fault-skew-ppm X]
  powerburst bench [--secs S] [--seed K] [--threads N] [--repeat R]
                   [--out FILE] [--metrics-out FILE] [--baseline FILE]
                   [--fail-on-invariants] [--fail-on-regression PCT]
  powerburst calibrate [--seed K]
  powerburst experiment <name>|all [--secs S] [--seed K]
  powerburst list";

/// Tiny flag parser: `--key value` and boolean `--key` pairs.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(|s| s.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

fn pattern(name: &str) -> Option<VideoPattern> {
    Some(match name {
        "56k" | "56K" => VideoPattern::All56,
        "256k" | "256K" => VideoPattern::All256,
        "512k" | "512K" => VideoPattern::All512,
        "split" => VideoPattern::Half56Half512,
        "mix" | "all" => VideoPattern::Mixed,
        _ => return None,
    })
}

fn cmd_run(args: &[String]) -> ExitCode {
    let f = Flags { args };
    let n_video: usize = f.parse("--clients", 10);
    let n_web: usize = f.parse("--web", 0);
    let ftp: u64 = f.parse("--ftp", 0);
    let secs: u64 = f.parse("--secs", 119);
    let seed: u64 = f.parse("--seed", 7);
    let pat = match pattern(f.get("--pattern").unwrap_or("56k")) {
        Some(p) => p,
        None => {
            eprintln!("unknown --pattern (use 56k|256k|512k|split|mix)");
            return ExitCode::FAILURE;
        }
    };
    let policy = if f.has("--psm") {
        PolicyKind::PsmBeacon { interval: SimDuration::from_ms(100) }
    } else if f.has("--static") {
        PolicyKind::StaticEqual { interval: SimDuration::from_ms(100) }
    } else {
        // `--interval` sets the SRP cadence; `--policy` picks the slot
        // allocator running at that cadence (default: the paper's fixed
        // demand-proportional builder).
        let interval = match f.get("--interval").unwrap_or("100") {
            "100" => Some(SimDuration::from_ms(100)),
            "500" => Some(SimDuration::from_ms(500)),
            "var" | "variable" => None,
            ms => match ms.parse::<u64>() {
                Ok(ms) => Some(SimDuration::from_ms(ms)),
                Err(_) => {
                    eprintln!("unknown --interval (use 100|500|var or milliseconds)");
                    return ExitCode::FAILURE;
                }
            },
        };
        let fixed = interval.unwrap_or(SimDuration::from_ms(100));
        match f.get("--policy").unwrap_or(if interval.is_none() { "variable" } else { "fixed" }) {
            "fixed" => PolicyKind::DynamicFixed { interval: fixed },
            "var" | "variable" => PolicyKind::DynamicVariable {
                min: SimDuration::from_ms(100),
                max: SimDuration::from_ms(500),
            },
            "channel" => PolicyKind::ChannelAware { interval: fixed },
            "buffer" => PolicyKind::BufferAware {
                interval: fixed,
                target_buffer: powerburst::core::DEFAULT_TARGET_BUFFER,
            },
            _ => {
                eprintln!("unknown --policy (use fixed|variable|channel|buffer)");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut clients: Vec<ClientSpec> = pat
        .fidelities(n_video)
        .into_iter()
        .map(|fi| ClientSpec::new(ClientKind::Video { fidelity: fi }))
        .collect();
    for _ in 0..n_web {
        clients.push(ClientSpec::new(ClientKind::Web { script: WebScriptConfig::default() }));
    }
    if ftp > 0 {
        clients.push(ClientSpec::new(ClientKind::Ftp { size: ftp }));
    }

    let mut cfg =
        ScenarioConfig::new(seed, policy, clients).with_duration(SimDuration::from_secs(secs));
    // Multi-cell: N cells round-robin over the client list, one AP +
    // proxy shard per occupied cell, coordinator tier when N > 1.
    let cells: usize = f.parse("--cells", 1);
    if cells > 1 {
        cfg = cfg.with_cells(cells);
    }
    // Worker threads for the sharded event core (0 = PB_THREADS/auto).
    // Outputs are byte-identical at every value; single-cell worlds
    // always run sequentially regardless.
    cfg = cfg.with_threads(f.parse("--threads", 0));
    if let Some(pool) = f.get("--coord-pool").and_then(|v| v.parse().ok()) {
        cfg = cfg.with_coord_pool(pool);
    }
    if let Some(ms) = f.get("--stagger-ms").and_then(|v| v.parse().ok()) {
        cfg.stagger = SimDuration::from_ms(ms);
    }
    if f.has("--live") {
        cfg.radio = RadioMode::Live;
    }
    if f.has("--admission") {
        cfg.admission = Some(powerburst::core::AdmissionConfig::default());
    }
    cfg.faults = FaultPlan {
        loss_prob: f.parse("--fault-loss", 0.0),
        dup_prob: f.parse("--fault-dup", 0.0),
        reorder_prob: f.parse("--fault-reorder", 0.0),
        reorder_max: SimDuration::from_ms(f.parse("--fault-reorder-ms", 5)),
        sched_drop_prob: f.parse("--fault-sched-drop", 0.0),
        ap_jitter_prob: f.parse(
            "--fault-jitter-prob",
            if f.get("--fault-jitter-ms").is_some() { 0.2 } else { 0.0 },
        ),
        ap_jitter_max: SimDuration::from_ms(f.parse("--fault-jitter-ms", 0)),
        clock_skew_ppm: f.parse("--fault-skew-ppm", 0.0),
    };
    let metrics_out = f.get("--metrics-out");
    let events_out = f.get("--trace-events");
    if metrics_out.is_some() || events_out.is_some() {
        cfg.obs = ObsConfig { metrics: true, events: events_out.is_some(), event_cap: 65_536 };
    }

    eprintln!(
        "running {} clients for {secs}s (seed {seed}, {} radio)...",
        cfg.clients.len(),
        if cfg.radio == RadioMode::Live { "live" } else { "monitor" }
    );

    if let Some(path) = f.get("--trace-out") {
        // Capture the raw trace alongside the report.
        let mut a = powerburst::scenario::assemble(&cfg);
        a.world.run_until(SimTime::ZERO + cfg.duration);
        let trace = a.world.take_trace();
        if let Err(e) = std::fs::write(path, to_jsonl(&trace)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace: {} frames -> {path}", trace.len());
        // Re-run for the structured report (runs are deterministic).
    }

    let r = run_scenario(&cfg);
    let mut t = Table::new(vec!["client", "saved %", "loss %", "sleep (s)", "delivered"]);
    for c in &r.clients {
        t.row(vec![
            format!("{} ({})", c.host, c.label),
            format!("{:.1}", c.saved_pct()),
            format!("{:.2}", c.loss_pct()),
            format!("{:.1}", c.post.sleep.as_secs_f64()),
            c.post.delivered.to_string(),
        ]);
    }
    println!("{}", t.render());
    let s = r.saved_all();
    println!(
        "overall: saved {} | loss {:.2}% | utilization {:.2} | schedules {} | downshifts {}",
        fmt_summary(&s),
        r.loss_summary(|_| true).mean,
        r.utilization,
        r.proxy.schedules_sent,
        r.downshifts,
    );
    if let Some(a) = r.admission {
        println!(
            "admission: {} admitted, {} rejected, {} packets refused",
            a.admitted, a.rejected, a.packets_refused
        );
    }
    if !cfg.faults.is_none() {
        let fs = r.faults;
        println!(
            "faults: {} lost, {} SRP dropped, {} duplicated, {} reordered, {} AP spikes",
            fs.frames_lost,
            fs.schedules_dropped,
            fs.frames_duplicated,
            fs.frames_reordered,
            fs.ap_spikes,
        );
    }
    if r.invariants.is_clean() {
        println!("invariants: clean");
    } else {
        println!("invariants: {} violation(s)", r.invariants.total());
        for v in r.invariants.violations().iter().take(5) {
            println!("  {v}");
        }
    }
    if let Err(code) = write_obs_exports(&r, metrics_out, events_out) {
        return code;
    }
    if f.has("--fail-on-invariants") && !r.invariants.is_clean() {
        eprintln!("failing: {} invariant violation(s)", r.invariants.total());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Write the metrics (JSON, or CSV when the path ends in `.csv`) and the
/// event stream (JSON-lines) exports of an instrumented run.
fn write_obs_exports(
    r: &ScenarioResult,
    metrics_out: Option<&str>,
    events_out: Option<&str>,
) -> Result<(), ExitCode> {
    let Some(rep) = r.obs.as_ref() else {
        if metrics_out.is_some() || events_out.is_some() {
            eprintln!("no observability export (collection was not enabled)");
            return Err(ExitCode::FAILURE);
        }
        return Ok(());
    };
    if let Some(path) = metrics_out {
        let body = if path.ends_with(".csv") { rep.metrics_csv() } else { rep.metrics_json() };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
        eprintln!("metrics -> {path}");
    }
    if let Some(path) = events_out {
        if let Err(e) = std::fs::write(path, rep.events_jsonl()) {
            eprintln!("cannot write {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
        eprintln!("events: {} ({} dropped) -> {path}", rep.events.len(), rep.events_dropped);
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let f = Flags { args };
    let opt = exp::ExpOptions {
        duration: SimDuration::from_secs(f.parse("--secs", 25)),
        seed: f.parse("--seed", 7),
        threads: f.parse("--threads", powerburst::sim::default_threads()),
    };
    let repeat: usize = f.parse("--repeat", 1).max(1);
    eprintln!(
        "profiling fig4 sweep + {} scenarios + instrumented run ({} s, seed {}, {} threads, {} repeat(s))...",
        exp::BENCH_SCENARIOS.len(),
        opt.duration.as_secs_f64(),
        opt.seed,
        opt.threads,
        repeat,
    );
    // Repeats fold stage-wise: each stage keeps its fastest run, the
    // minimum being the least-noise wall-clock estimator on a shared
    // machine. Simulation outputs are deterministic, so only wall time
    // differs between repeats.
    let (mut report, r) = exp::bench_suite(&opt);
    for _ in 1..repeat {
        let (again, _) = exp::bench_suite(&opt);
        report.keep_best(again);
    }
    let out = f.get("--out").unwrap_or("BENCH_pr10.json");
    if let Err(e) = std::fs::write(out, report.to_json()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    for st in &report.stages {
        println!(
            "{:<18} {:>8.2}s  {:>12} events  {:>12.0} events/s  ({} jobs, {} threads)",
            st.name,
            st.wall_s,
            st.sim_events,
            st.events_per_sec(),
            st.jobs.len(),
            st.threads,
        );
    }
    println!("bench report -> {out}");
    if let Some(base_path) = f.get("--baseline") {
        // Comparison against a committed baseline report. Report-only by
        // default (runners are noisy); `--fail-on-regression <pct>` turns
        // any stage slower than the threshold into a hard failure — pair
        // it with `--repeat` and a forgiving percentage to keep the gate
        // meaningful on shared machines.
        match std::fs::read_to_string(base_path) {
            Ok(base_json) => {
                let current = powerburst::obs::parse_stage_rates(&report.to_json());
                let baseline = powerburst::obs::parse_stage_rates(&base_json);
                println!("events/sec vs baseline {base_path}:");
                for line in powerburst::obs::delta_lines(&current, &baseline) {
                    println!("  {line}");
                }
                if f.has("--fail-on-regression") {
                    let threshold: f64 = f.parse("--fail-on-regression", 20.0);
                    let offenders = powerburst::obs::regressions(&current, &baseline, threshold);
                    if !offenders.is_empty() {
                        println!("regressions past -{threshold:.1}%:");
                        for line in &offenders {
                            println!("  {line}");
                        }
                        return ExitCode::FAILURE;
                    }
                    println!("no stage regressed past -{threshold:.1}%");
                }
            }
            Err(e) => eprintln!("baseline {base_path} unreadable ({e}); skipping comparison"),
        }
    }
    if let Err(code) = write_obs_exports(&r, f.get("--metrics-out"), f.get("--trace-events")) {
        return code;
    }
    if !r.invariants.is_clean() {
        println!("invariants: {} violation(s) in instrumented run", r.invariants.total());
        if f.has("--fail-on-invariants") {
            return ExitCode::FAILURE;
        }
    } else {
        println!("invariants: clean");
    }
    ExitCode::SUCCESS
}

fn cmd_calibrate(args: &[String]) -> ExitCode {
    let f = Flags { args };
    let seed: u64 = f.parse("--seed", 7);
    let cal = calibrate(&NetworkConfig::default(), seed, &powerburst::scenario::DEFAULT_SIZES, 20);
    println!(
        "fitted send-cost model: time_us = {:.1} + {:.4} * bytes (R² {:.4}, {} samples)",
        cal.model.alpha_us, cal.model.beta_us, cal.r2, cal.samples
    );
    println!("effective bandwidth at 728 B frames: {:.2} Mb/s", cal.model.effective_bps(728) / 1e6);
    ExitCode::SUCCESS
}

const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig4", "Figure 4: ten video clients, five patterns x three intervals"),
    ("tcp-only", "§4.2: ten web clients"),
    ("fig5", "Figure 5: seven video + three web clients"),
    ("optimal", "§4.3: comparison to the theoretical optimal"),
    ("fig6", "Figure 6: early-transition sweep"),
    ("loss", "§4.3: packet loss survey"),
    ("static", "§4.3: static vs dynamic schedules"),
    ("fig7", "Figure 7: slotted TCP/UDP static schedules"),
    ("drops", "§4.3: Netfilter/DummyNet drop impact"),
    ("penalty", "§4.3: 100 ms vs 500 ms transition penalty"),
    ("split", "A1: split connections vs pass-through"),
    ("unchanged", "A2: §5 schedule-unchanged optimization"),
    ("intervals", "A3: burst-interval sweep"),
    ("comp", "A4: adaptive vs fixed-anchor delay compensation"),
    ("psm", "A5: proxy schedule vs 802.11-PSM baseline"),
    ("admission", "A6: §3.2.1 admission control under overload"),
    ("policies", "A7: scheduling-policy A/B (fixed/variable/channel/buffer)"),
    ("bandwidth", "M1: bandwidth microbenchmark + linear fit"),
];

fn cmd_experiment(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("experiment name required; see `powerburst list`");
        return ExitCode::FAILURE;
    };
    let f = Flags { args: &args[1..] };
    let opt = exp::ExpOptions {
        duration: SimDuration::from_secs(f.parse("--secs", 119)),
        seed: f.parse("--seed", 7),
        ..exp::ExpOptions::default()
    };

    let out = match name.as_str() {
        "fig4" => exp::render_fig4(&exp::fig4_udp_video(&opt)),
        "tcp-only" => exp::render_tcp_only(&exp::tab_tcp_only(&opt)),
        "fig5" => exp::render_fig5(&exp::fig5_mixed(&opt)),
        "optimal" => exp::render_optimal(&exp::tab_optimal(&opt)),
        "fig6" => exp::render_fig6(&exp::fig6_early_transition(&opt)),
        "loss" => exp::render_packet_loss(&exp::tab_packet_loss(&opt)),
        "static" => exp::render_static_vs_dynamic(&exp::tab_static_vs_dynamic(&opt)),
        "fig7" => exp::render_fig7(&exp::fig7_slotted_static(&opt)),
        "drops" => exp::render_drop_impact(&exp::tab_drop_impact(&opt)),
        "penalty" => exp::render_transition_penalty(&exp::tab_transition_penalty(&opt)),
        "split" => exp::render_split(&exp::abl_split_connection(&opt)),
        "unchanged" => exp::render_unchanged(&exp::abl_schedule_unchanged(&opt)),
        "intervals" => exp::render_interval_sweep(&exp::abl_burst_interval(&opt)),
        "comp" => exp::render_delay_compensation(&exp::abl_delay_compensation(&opt)),
        "psm" => exp::render_psm(&exp::abl_psm_baseline(&opt)),
        "admission" => exp::render_admission(&exp::abl_admission_control(&opt)),
        "policies" => exp::render_policy_ab(&exp::ab_policy_comparison(&opt)),
        "bandwidth" => exp::render_bandwidth_model(&exp::tab_bandwidth_model(&opt)),
        "all" => exp::run_all(&opt),
        other => {
            eprintln!("unknown experiment `{other}`; see `powerburst list`");
            return ExitCode::FAILURE;
        }
    };
    println!("{out}");
    ExitCode::SUCCESS
}
