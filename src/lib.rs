//! # powerburst
//!
//! A from-scratch Rust reproduction of **“Dynamic, Power-Aware Scheduling
//! for Mobile Clients Using a Transparent Proxy”** (ICPP 2004): a
//! transparent proxy that buffers downlink traffic and bursts it to mobile
//! clients on a broadcast schedule, so their wireless NICs can sleep
//! between bursts — plus every substrate the paper's testbed provided
//! (a deterministic network simulator, a compact TCP, RealServer-style
//! streaming workloads, a WaveLAN energy model, and the monitoring-station
//! postmortem methodology).
//!
//! This crate is the facade: it re-exports the workspace crates under one
//! roof and provides a [`prelude`] for examples and quick experiments.
//!
//! ```
//! use powerburst::prelude::*;
//!
//! // Ten clients streaming 56 kbps video behind a 100 ms burst schedule.
//! let clients = (0..10)
//!     .map(|_| ClientSpec::new(ClientKind::Video { fidelity: Fidelity::K56 }))
//!     .collect();
//! let cfg = ScenarioConfig::new(
//!     42,
//!     PolicyKind::DynamicFixed { interval: SimDuration::from_ms(100) },
//!     clients,
//! )
//! .with_duration(SimDuration::from_secs(10));
//! let result = run_scenario(&cfg);
//! assert!(result.saved_all().mean > 50.0, "low-rate streams save energy");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use powerburst_client as client;
pub use powerburst_core as core;
pub use powerburst_energy as energy;
pub use powerburst_net as net;
pub use powerburst_obs as obs;
pub use powerburst_scenario as scenario;
pub use powerburst_sim as sim;
pub use powerburst_trace as trace;
pub use powerburst_traffic as traffic;
pub use powerburst_transport as transport;

/// Everything a typical experiment needs in one import.
pub mod prelude {
    pub use powerburst_client::{ClientConfig, ClientPowerStats, CompMode, PowerClient};
    pub use powerburst_core::{
        BandwidthModel, InvariantKind, InvariantLog, PolicyKind, Proxy, ProxyConfig, ProxyMode,
        Schedule, Violation,
    };
    pub use powerburst_energy::{
        naive_energy_mj, optimal_savings_for_rate, CardSpec, EnergyReport, Wnic,
    };
    pub use powerburst_net::{
        AirtimeModel, ApDelayParams, FaultPlan, FaultStats, HostAddr, LinkSpec, PipeSpec, World,
    };
    pub use powerburst_obs::{ObsReport, Recorder, RecorderConfig};
    pub use powerburst_scenario::{
        assemble, calibrate, run_scenario, ClientKind, ClientSpec, NetworkConfig, ObsConfig,
        RadioMode, ScenarioConfig, ScenarioResult, VideoPattern,
    };
    pub use powerburst_sim::{SimDuration, SimTime, Summary};
    pub use powerburst_trace::{analyze_client, PolicyParams, PostmortemReport};
    pub use powerburst_traffic::{Fidelity, WebScriptConfig};
    pub use powerburst_transport::{TcpConfig, TcpEndpoint};
}
